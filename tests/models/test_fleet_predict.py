"""Stacked-state ``predict_fleet`` equivalence for every zoo member.

The fleet engine's stateful fused dispatch rests on one contract: a
``predict_fleet`` call over a subject-major stack with one
:class:`~repro.models.base.FleetState` slot per subject is bit-identical
to replaying each subject alone (reset, then ``predict``).  This is
pinned here for every registry model, the calibrated zoo and the
smoothed stateful zoo — including zero-window subjects, NaN-fallback
streams, state continuation across calls (streaming), and the
:class:`~repro.models.base.FleetStack` lock-step helper itself.
"""

import copy

import numpy as np
import pytest

from repro.models.base import FleetStack, FleetState, HeartRatePredictor
from repro.models.error_model import calibrated_model_zoo, smoothed_calibrated_zoo
from repro.models.registry import MODEL_REGISTRY, create_model


def make_fleet(lengths, seed=0, window_length=256):
    """Per-subject window arrays plus calibrated-model context."""
    rng = np.random.default_rng(seed)
    subjects = []
    for n in lengths:
        subjects.append(
            {
                "ppg": rng.standard_normal((n, window_length)),
                "accel": rng.standard_normal((n, window_length, 3)),
                "true_hr": 70.0 + 20.0 * rng.random(n),
                "activity": rng.integers(0, 9, size=n),
            }
        )
    return subjects


def stack_fleet(subjects):
    """Concatenate a fleet subject-major, with the slot vector."""
    subject_index = np.concatenate(
        [np.full(s["ppg"].shape[0], i, dtype=np.intp) for i, s in enumerate(subjects)]
    )
    return (
        np.concatenate([s["ppg"] for s in subjects]),
        np.concatenate([s["accel"] for s in subjects]),
        subject_index,
        {
            "true_hr": np.concatenate([s["true_hr"] for s in subjects]),
            "activity": np.concatenate([s["activity"] for s in subjects]),
        },
    )


def sequential_reference(predictor: HeartRatePredictor, subjects) -> np.ndarray:
    """Per-subject replay: reset, then one batch predict per subject."""
    outputs = []
    for s in subjects:
        predictor.reset()
        if s["ppg"].shape[0] == 0:
            outputs.append(np.empty(0))
            continue
        outputs.append(
            np.asarray(
                predictor.predict(
                    s["ppg"], s["accel"], true_hr=s["true_hr"], activity=s["activity"]
                ),
                dtype=float,
            )
        )
    return np.concatenate(outputs)


def fused(predictor: HeartRatePredictor, subjects) -> np.ndarray:
    ppg, accel, subject_index, context = stack_fleet(subjects)
    state = predictor.make_fleet_state(len(subjects))
    return np.asarray(
        predictor.predict_fleet(
            ppg, accel, subject_index=subject_index, state=state, **context
        ),
        dtype=float,
    )


LENGTHS = [13, 0, 7, 20]


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_registry_models_fused_equals_sequential(name):
    predictor = create_model(name)
    subjects = make_fleet(LENGTHS, seed=3)
    expected = sequential_reference(copy.deepcopy(predictor), subjects)
    got = fused(copy.deepcopy(predictor), subjects)
    np.testing.assert_array_equal(expected, got)


@pytest.mark.parametrize("zoo_builder", [calibrated_model_zoo, smoothed_calibrated_zoo])
def test_calibrated_zoos_fused_equals_sequential(zoo_builder):
    for predictor in zoo_builder(seed=5).values():
        subjects = make_fleet(LENGTHS, seed=4, window_length=16)
        expected = sequential_reference(copy.deepcopy(predictor), subjects)
        got = fused(copy.deepcopy(predictor), subjects)
        np.testing.assert_array_equal(expected, got)


@pytest.mark.parametrize("name", ["AT", "SpectralTracker"])
def test_nan_fallback_streams_fused_equals_sequential(name):
    """Flat windows produce NaN raw estimates; the per-slot fallback must
    replay exactly like each subject's private ``_with_fallback`` chain."""
    predictor = create_model(name)
    rng = np.random.default_rng(7)
    subjects = make_fleet([9, 5, 12], seed=8)
    for s in subjects:
        flat = rng.random(s["ppg"].shape[0]) < 0.4
        s["ppg"][flat] = 0.0
    expected = sequential_reference(copy.deepcopy(predictor), subjects)
    got = fused(copy.deepcopy(predictor), subjects)
    np.testing.assert_array_equal(expected, got)


@pytest.mark.parametrize("name", ["AT", "SpectralTracker"])
def test_streaming_continuation_matches_one_shot(name):
    """Two fused calls sharing one FleetState == one fused call: slots carry
    each subject's temporal state across calls.

    This holds for trackers whose only state is the per-slot estimate;
    the calibrated models are excluded because their *cross-run* random
    stream is positional — splitting a stack over two calls reassigns
    draws to windows, which is exactly why the fleet engine fuses each
    model's whole stack into one subject-major call.
    """
    predictor = create_model(name)
    subjects = make_fleet([8, 11, 5], seed=9, window_length=32)
    expected = fused(copy.deepcopy(predictor), subjects)

    twin = copy.deepcopy(predictor)
    state = twin.make_fleet_state(len(subjects))
    halves = []
    for part in (0, 1):
        chunk = []
        for s in subjects:
            n = s["ppg"].shape[0]
            mid = n // 2
            sl = slice(0, mid) if part == 0 else slice(mid, n)
            chunk.append({k: v[sl] for k, v in s.items()})
        ppg, accel, subject_index, context = stack_fleet(chunk)
        halves.append(
            twin.predict_fleet(
                ppg, accel, subject_index=subject_index, state=state, **context
            )
        )
    merged = np.empty(expected.shape[0])
    offset = 0
    part_offsets = [0, 0]
    for i, s in enumerate(subjects):
        n = s["ppg"].shape[0]
        mid = n // 2
        merged[offset : offset + mid] = halves[0][part_offsets[0] : part_offsets[0] + mid]
        merged[offset + mid : offset + n] = halves[1][
            part_offsets[1] : part_offsets[1] + (n - mid)
        ]
        part_offsets[0] += mid
        part_offsets[1] += n - mid
        offset += n
    np.testing.assert_array_equal(expected, merged)


class TestFleetState:
    def test_for_slots_starts_reset(self):
        state = FleetState.for_slots(4)
        assert state.n_slots == 4
        assert np.isnan(state.last_estimate).all()

    def test_free_reinitializes_slots(self):
        state = FleetState(last_estimate=np.array([80.0, 90.0, 100.0]))
        state.free([1])
        np.testing.assert_array_equal(np.isnan(state.last_estimate), [False, True, False])

    def test_rejects_non_vector_state(self):
        with pytest.raises(ValueError, match="1-D"):
            FleetState(last_estimate=np.zeros((2, 2)))
        with pytest.raises(ValueError, match=">= 0"):
            FleetState.for_slots(-1)

    def test_freed_slot_replays_like_a_fresh_run(self):
        """free() is the per-subject reset boundary: after freeing, a slot's
        stream restarts exactly like a reset predictor."""
        predictor = create_model("SpectralTracker")
        subjects = make_fleet([6], seed=11)
        expected = fused(copy.deepcopy(predictor), subjects)

        twin = copy.deepcopy(predictor)
        state = twin.make_fleet_state(1)
        ppg, accel, subject_index, context = stack_fleet(subjects)
        twin.predict_fleet(ppg, accel, subject_index=subject_index, state=state)
        state.free([0])
        replay = twin.predict_fleet(ppg, accel, subject_index=subject_index, state=state)
        np.testing.assert_array_equal(expected, replay)


class TestFleetCallValidation:
    def predictor(self):
        return create_model("AT")

    def test_requires_subject_index_and_state(self):
        with pytest.raises(TypeError, match="subject_index and state"):
            self.predictor().predict_fleet(np.zeros((3, 16)))

    def test_rejects_unsorted_subject_index(self):
        state = FleetState.for_slots(2)
        with pytest.raises(ValueError, match="non-decreasing"):
            self.predictor().predict_fleet(
                np.zeros((3, 16)),
                subject_index=np.array([1, 0, 1]),
                state=state,
            )

    def test_rejects_out_of_range_slots(self):
        state = FleetState.for_slots(2)
        with pytest.raises(ValueError, match="lie in"):
            self.predictor().predict_fleet(
                np.zeros((2, 16)), subject_index=np.array([1, 2]), state=state
            )

    def test_rejects_wrong_length_subject_index(self):
        state = FleetState.for_slots(2)
        with pytest.raises(ValueError, match="one entry per window"):
            self.predictor().predict_fleet(
                np.zeros((3, 16)), subject_index=np.array([0, 1]), state=state
            )

    def test_rejects_non_integer_subject_index(self):
        state = FleetState.for_slots(2)
        with pytest.raises(ValueError, match="integer"):
            self.predictor().predict_fleet(
                np.zeros((2, 16)),
                subject_index=np.array([0.0, 1.0]),
                state=state,
            )

    def test_instance_state_left_reset(self):
        """The fused call's temporal state lives in the FleetState, not in
        the predictor instance."""
        predictor = create_model("SpectralTracker")
        subjects = make_fleet([5, 4], seed=13)
        fused(predictor, subjects)
        assert predictor._last_estimate is None


class TestFleetStack:
    def test_stack_unstack_roundtrip(self):
        subject_index = np.array([0, 0, 0, 2, 2, 3], dtype=np.intp)
        stack = FleetStack(subject_index, n_slots=4)
        values = np.arange(6, dtype=float)
        np.testing.assert_array_equal(stack.unstack(stack.stack(values)), values)
        np.testing.assert_array_equal(
            stack.unstack_steps(stack.stack_steps(values)), values
        )

    def test_widths_are_active_prefix_sizes(self):
        subject_index = np.array([0, 0, 0, 2, 2, 3], dtype=np.intp)
        stack = FleetStack(subject_index, n_slots=4)
        # streams: slot0=3, slot2=2, slot3=1, slot1=0 windows
        np.testing.assert_array_equal(stack.widths, [3, 2, 1])
        assert not stack.uniform
        assert not stack.contiguous_uniform

    def test_uniform_contiguous_layout_uses_reshape(self):
        subject_index = np.repeat(np.arange(3, dtype=np.intp), 4)
        stack = FleetStack(subject_index, n_slots=3)
        assert stack.uniform and stack.contiguous_uniform
        values = np.arange(12, dtype=float)
        dense = stack.stack_steps(values)
        assert dense.shape == (4, 3)
        np.testing.assert_array_equal(dense[:, 0], [0, 1, 2, 3])
        np.testing.assert_array_equal(stack.unstack_steps(dense), values)

    def test_rows_order_slots_by_descending_stream_length(self):
        subject_index = np.array([0, 1, 1, 1, 2, 2], dtype=np.intp)
        stack = FleetStack(subject_index, n_slots=3)
        np.testing.assert_array_equal(stack.order, [1, 2, 0])


class TestVectorizedFallback:
    def test_matches_scalar_fallback_chain(self):
        """_with_fallback_fleet == the scalar helper applied per slot."""
        rng = np.random.default_rng(17)
        predictor = create_model("AT")
        lengths = [6, 0, 9, 1]
        bpm = rng.uniform(40, 180, size=sum(lengths))
        bpm[rng.random(bpm.size) < 0.5] = np.nan
        subject_index = np.concatenate(
            [np.full(n, i, dtype=np.intp) for i, n in enumerate(lengths)]
        )
        seeds = np.array([np.nan, 77.0, np.nan, 55.0])

        scalar_out = np.empty(bpm.size)
        scalar_state = seeds.copy()
        offset = 0
        for slot, n in enumerate(lengths):
            predictor.reset()
            if not np.isnan(seeds[slot]):
                predictor._last_estimate = float(seeds[slot])
            for i in range(n):
                scalar_out[offset + i] = predictor._with_fallback(bpm[offset + i])
            scalar_state[slot] = (
                np.nan if predictor._last_estimate is None else predictor._last_estimate
            )
            offset += n

        state = FleetState(last_estimate=seeds.copy())
        fleet_out = predictor._with_fallback_fleet(bpm, subject_index, state)
        np.testing.assert_array_equal(scalar_out, fleet_out)
        np.testing.assert_array_equal(scalar_state, state.last_estimate)
