"""Tests for the spectral baseline HR predictor."""

import numpy as np
import pytest

from repro.data.ppg_model import PPGSynthesizer
from repro.models.spectral_tracker import SpectralHRPredictor


def ppg_window(bpm: float, seed: int = 0, noise: float = 0.02) -> np.ndarray:
    synth = PPGSynthesizer(noise_std=noise, rng=np.random.default_rng(seed))
    return synth.synthesize(np.full(256, bpm))


class TestSpectralPredictor:
    def test_recovers_hr_on_clean_ppg(self):
        predictor = SpectralHRPredictor()
        for bpm in (55.0, 75.0, 110.0, 160.0):
            estimate = predictor.predict_window(ppg_window(bpm, seed=int(bpm)))
            predictor.reset()
            assert estimate == pytest.approx(bpm, abs=6.0)

    def test_info(self):
        info = SpectralHRPredictor().info
        assert info.name == "SpectralTracker"
        assert info.uses_accelerometer
        assert info.macs_per_window > 0

    def test_accelerometer_masking_suppresses_motion_peak(self):
        rng = np.random.default_rng(3)
        true_bpm = 70.0
        motion_hz = 2.2  # 132 "BPM" interference inside the HR band
        t = np.arange(256) / 32.0
        ppg = ppg_window(true_bpm, seed=3) + 1.5 * np.sin(2 * np.pi * motion_hz * t)
        accel = np.stack([np.sin(2 * np.pi * motion_hz * t + phi) for phi in rng.uniform(0, 6, 3)],
                         axis=1)
        unmasked = SpectralHRPredictor(accel_suppression=0.0).predict_window(ppg)
        masked = SpectralHRPredictor(accel_suppression=8.0).predict_window(ppg, accel)
        assert abs(masked - true_bpm) < abs(unmasked - true_bpm)

    def test_tracking_damps_jumps(self):
        predictor = SpectralHRPredictor(tracking_weight=0.8)
        first = predictor.predict_window(ppg_window(70.0, seed=1))
        jumped = predictor.predict_window(ppg_window(180.0, seed=2))
        # The second estimate is pulled towards the previous one.
        assert jumped < 180.0 - 10.0
        assert jumped > first

    def test_fallback_on_silent_window(self):
        predictor = SpectralHRPredictor()
        assert predictor.predict_window(np.zeros(256)) == predictor.FALLBACK_BPM

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpectralHRPredictor(band=(2.0, 1.0))
        with pytest.raises(ValueError):
            SpectralHRPredictor(accel_suppression=-1.0)
        with pytest.raises(ValueError):
            SpectralHRPredictor(tracking_weight=1.0)
