"""Tests for the model registry and paper reference stats."""

import pytest

from repro.models.base import HeartRatePredictor, PredictorInfo
from repro.models.registry import (
    MODEL_REGISTRY,
    PAPER_BLE_ENERGY_MJ,
    PAPER_BLE_TIME_MS,
    PAPER_MODEL_STATS,
    create_model,
)


class TestPaperStats:
    def test_table3_rows_present(self):
        assert set(PAPER_MODEL_STATS) == {"AT", "TimePPG-Small", "TimePPG-Big"}

    def test_table3_values_transcribed(self):
        at = PAPER_MODEL_STATS["AT"]
        assert at.watch_cycles == 100_000
        assert at.watch_energy_mj == pytest.approx(0.234)
        assert at.mae_bpm == pytest.approx(10.99)
        big = PAPER_MODEL_STATS["TimePPG-Big"]
        assert big.watch_time_ms == pytest.approx(1611.88)
        assert big.phone_energy_mj == pytest.approx(25.60)
        assert big.parameters == 232_600
        small = PAPER_MODEL_STATS["TimePPG-Small"]
        assert small.operations == 77_630
        assert small.phone_time_ms == pytest.approx(3.45)

    def test_ble_constants(self):
        assert PAPER_BLE_TIME_MS == pytest.approx(10.240)
        assert PAPER_BLE_ENERGY_MJ == pytest.approx(0.52)

    def test_accuracy_and_cost_orderings(self):
        stats = PAPER_MODEL_STATS
        assert stats["TimePPG-Big"].mae_bpm < stats["TimePPG-Small"].mae_bpm < stats["AT"].mae_bpm
        assert stats["AT"].watch_energy_mj < stats["TimePPG-Small"].watch_energy_mj \
            < stats["TimePPG-Big"].watch_energy_mj


class TestRegistry:
    def test_all_registered_models_instantiate(self):
        for name in MODEL_REGISTRY:
            model = create_model(name)
            assert isinstance(model, HeartRatePredictor)
            assert isinstance(model.info, PredictorInfo)

    def test_created_models_report_their_name(self):
        assert create_model("AT").info.name == "AT"
        assert create_model("TimePPG-Small").info.name == "TimePPG-Small"
        assert create_model("TimePPG-Big").info.name == "TimePPG-Big"

    def test_kwargs_forwarded(self):
        model = create_model("AT", fs=64.0)
        assert model.fs == 64.0

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            create_model("NotAModel")
