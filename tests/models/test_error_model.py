"""Tests for the calibrated per-activity error models."""

import numpy as np
import pytest

from repro.data.activities import Activity, difficulty_of
from repro.models.error_model import (
    PAPER_ACTIVITY_MAE_PROFILES,
    PAPER_OVERALL_MAE,
    CalibratedHRModel,
    ErrorProfile,
    calibrated_model_zoo,
)


class TestProfiles:
    def test_profiles_average_to_paper_overall_mae(self):
        """Uniform-activity average must reproduce Table III MAEs."""
        for name, values in PAPER_ACTIVITY_MAE_PROFILES.items():
            profile = ErrorProfile(name, values)
            assert profile.overall_mae == pytest.approx(PAPER_OVERALL_MAE[name], abs=0.02)

    def test_error_grows_with_difficulty(self):
        for name, values in PAPER_ACTIVITY_MAE_PROFILES.items():
            assert list(values) == sorted(values), name

    def test_at_degrades_much_faster_than_dnns(self):
        at = ErrorProfile("AT", PAPER_ACTIVITY_MAE_PROFILES["AT"])
        big = ErrorProfile("TimePPG-Big", PAPER_ACTIVITY_MAE_PROFILES["TimePPG-Big"])
        # On easy activities AT is competitive; on the hardest it collapses.
        assert at.mae_for_difficulty(1) < big.mae_for_difficulty(1) + 1.0
        assert at.mae_for_difficulty(9) > 4 * big.mae_for_difficulty(9)

    def test_accuracy_ordering_matches_paper(self):
        maes = {name: ErrorProfile(name, v).overall_mae
                for name, v in PAPER_ACTIVITY_MAE_PROFILES.items()}
        assert maes["TimePPG-Big"] < maes["TimePPG-Small"] < maes["AT"]

    def test_expected_mae_partitions(self):
        profile = ErrorProfile("AT", PAPER_ACTIVITY_MAE_PROFILES["AT"])
        easy = profile.expected_mae(easy_threshold=4, easy=True)
        hard = profile.expected_mae(easy_threshold=4, easy=False)
        overall = profile.overall_mae
        assert easy < overall < hard
        # Weighted recombination recovers the overall value.
        assert (4 * easy + 5 * hard) / 9 == pytest.approx(overall)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ErrorProfile("bad", (1.0,) * 8)
        with pytest.raises(ValueError):
            ErrorProfile("bad", (1.0,) * 8 + (-1.0,))
        profile = ErrorProfile("AT", PAPER_ACTIVITY_MAE_PROFILES["AT"])
        with pytest.raises(ValueError):
            profile.mae_for_difficulty(0)
        with pytest.raises(ValueError):
            profile.expected_mae(easy_threshold=4)


class TestCalibratedModel:
    def test_long_run_mae_matches_profile(self):
        profile = ErrorProfile("TimePPG-Small", PAPER_ACTIVITY_MAE_PROFILES["TimePPG-Small"])
        model = CalibratedHRModel(profile, seed=0)
        n = 4000
        errors = []
        for i in range(n):
            activity = Activity(i % 9)
            prediction = model.predict_window(
                np.zeros(256), true_hr=80.0, activity=int(activity)
            )
            errors.append(abs(prediction - 80.0))
        assert np.mean(errors) == pytest.approx(profile.overall_mae, rel=0.12)

    def test_harder_activities_produce_larger_errors(self):
        profile = ErrorProfile("AT", PAPER_ACTIVITY_MAE_PROFILES["AT"])
        model = CalibratedHRModel(profile, seed=1)
        easy = [abs(model.predict_window(np.zeros(1), true_hr=80.0,
                                         activity=int(Activity.RESTING)) - 80.0)
                for _ in range(500)]
        hard = [abs(model.predict_window(np.zeros(1), true_hr=80.0,
                                         activity=int(Activity.TABLE_SOCCER)) - 80.0)
                for _ in range(500)]
        assert np.mean(hard) > 5 * np.mean(easy)

    def test_requires_context(self):
        profile = ErrorProfile("AT", PAPER_ACTIVITY_MAE_PROFILES["AT"])
        model = CalibratedHRModel(profile)
        with pytest.raises(ValueError):
            model.predict_window(np.zeros(1))

    def test_predictions_stay_physiological(self):
        profile = ErrorProfile("AT", PAPER_ACTIVITY_MAE_PROFILES["AT"])
        model = CalibratedHRModel(profile, seed=2)
        predictions = [
            model.predict_window(np.zeros(1), true_hr=40.0, activity=int(Activity.TABLE_SOCCER))
            for _ in range(300)
        ]
        assert min(predictions) >= 30.0
        assert max(predictions) <= 220.0

    def test_reproducible_with_seed(self):
        profile = ErrorProfile("AT", PAPER_ACTIVITY_MAE_PROFILES["AT"])
        a = CalibratedHRModel(profile, seed=5).predict_window(
            np.zeros(1), true_hr=70.0, activity=0
        )
        b = CalibratedHRModel(profile, seed=5).predict_window(
            np.zeros(1), true_hr=70.0, activity=0
        )
        assert a == b


class TestCalibratedZoo:
    def test_zoo_contains_the_three_paper_models(self):
        zoo = calibrated_model_zoo(seed=0)
        assert set(zoo) == {"AT", "TimePPG-Small", "TimePPG-Big"}

    def test_zoo_metadata_matches_paper_complexity(self):
        zoo = calibrated_model_zoo(seed=0)
        assert zoo["AT"].info.macs_per_window == 3000
        assert zoo["TimePPG-Small"].info.n_parameters == 5090
        assert zoo["TimePPG-Big"].info.macs_per_window == 12_270_000

    def test_batch_prediction_uses_per_window_context(self, small_dataset):
        subject = small_dataset.subjects[0]
        zoo = calibrated_model_zoo(seed=0)
        predictions = zoo["TimePPG-Big"].predict(
            subject.ppg_windows,
            subject.accel_windows,
            true_hr=subject.hr,
            activity=subject.activity,
        )
        errors = np.abs(predictions - subject.hr)
        # Errors correlate with window difficulty, not constant.
        easy = errors[subject.difficulty <= 3]
        hard = errors[subject.difficulty >= 7]
        assert hard.mean() > easy.mean()
