"""Tests for the common predictor interface."""

import numpy as np
import pytest

from repro.models.base import HeartRatePredictor, PredictorInfo


class ConstantPredictor(HeartRatePredictor):
    """Trivial predictor used to exercise the base-class behaviour."""

    def __init__(self, value: float = 72.0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.value = value
        self.seen_context: list[dict] = []

    @property
    def info(self) -> PredictorInfo:
        return PredictorInfo(name="Constant", n_parameters=0, macs_per_window=1)

    def predict_window(self, ppg_window, accel_window=None, **context):
        self.seen_context.append(context)
        return self.value


class TestBasePredictor:
    def test_invalid_fs(self):
        with pytest.raises(ValueError):
            ConstantPredictor(fs=0.0)

    def test_batch_prediction_loops_over_windows(self):
        predictor = ConstantPredictor(65.0)
        out = predictor.predict(np.zeros((7, 256)))
        assert out.shape == (7,)
        assert np.all(out == 65.0)

    def test_per_window_context_is_sliced(self):
        predictor = ConstantPredictor()
        true_hr = np.arange(5, dtype=float)
        predictor.predict(np.zeros((5, 10)), true_hr=true_hr, activity=np.arange(5))
        assert [c["true_hr"] for c in predictor.seen_context] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert [c["activity"] for c in predictor.seen_context] == [0, 1, 2, 3, 4]

    def test_scalar_context_is_broadcast(self):
        predictor = ConstantPredictor()
        predictor.predict(np.zeros((3, 10)), mode="test")
        assert all(c["mode"] == "test" for c in predictor.seen_context)

    def test_single_window_batch_slices_1d_context(self):
        predictor = ConstantPredictor()
        predictor.predict(np.zeros((1, 10)), true_hr=np.array([77.0]))
        assert predictor.seen_context[0]["true_hr"] == 77.0

    def test_single_window_batch_passes_2d_payload_intact(self):
        """Regression: a whole ``(1, k)`` payload must not be silently
        reduced to its first row just because the batch has one window."""
        predictor = ConstantPredictor()
        payload = np.arange(6.0).reshape(1, 6)
        predictor.predict(np.zeros((1, 10)), payload=payload)
        seen = predictor.seen_context[0]["payload"]
        assert seen.shape == (1, 6)
        np.testing.assert_array_equal(seen, payload)

    def test_multi_window_2d_context_is_sliced_per_window(self):
        predictor = ConstantPredictor()
        features = np.arange(12.0).reshape(4, 3)
        predictor.predict(np.zeros((4, 10)), features=features)
        for i, c in enumerate(predictor.seen_context):
            np.testing.assert_array_equal(c["features"], features[i])

    def test_mismatched_length_array_passes_intact(self):
        predictor = ConstantPredictor()
        whole = np.zeros(7)
        predictor.predict(np.zeros((3, 10)), whole=whole)
        assert all(c["whole"] is whole for c in predictor.seen_context)

    def test_fallback_mechanism(self):
        predictor = ConstantPredictor()
        assert predictor._with_fallback(float("nan")) == predictor.FALLBACK_BPM
        assert predictor._with_fallback(88.0) == 88.0
        assert predictor._with_fallback(float("nan")) == 88.0
        predictor.reset()
        assert predictor._with_fallback(float("nan")) == predictor.FALLBACK_BPM
