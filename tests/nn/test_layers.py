"""Tests for the NumPy NN layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool1d,
    BatchNorm1d,
    Conv1d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool1d,
    ReLU,
)


def numerical_gradient(fn, array, index, eps=1e-6):
    """Central finite-difference derivative of ``fn`` w.r.t. ``array[index]``."""
    array[index] += eps
    plus = fn()
    array[index] -= 2 * eps
    minus = fn()
    array[index] += eps
    return (plus - minus) / (2 * eps)


class TestConv1dGeometry:
    def test_same_padding_keeps_length(self):
        conv = Conv1d(2, 4, kernel_size=3, dilation=4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(3, 2, 100))
        assert conv.forward(x).shape == (3, 4, 100)

    def test_stride_two_halves_length(self):
        conv = Conv1d(1, 1, kernel_size=3, stride=2, rng=np.random.default_rng(0))
        for length in (256, 255, 100, 17):
            x = np.zeros((1, 1, length))
            assert conv.forward(x).shape[-1] == int(np.ceil(length / 2))

    def test_effective_kernel(self):
        assert Conv1d(1, 1, kernel_size=3, dilation=4).effective_kernel == 9
        assert Conv1d(1, 1, kernel_size=5, dilation=1).effective_kernel == 5

    def test_explicit_integer_padding(self):
        conv = Conv1d(1, 1, kernel_size=3, padding=0, rng=np.random.default_rng(0))
        x = np.zeros((1, 1, 10))
        assert conv.forward(x).shape[-1] == 8

    def test_output_shape_helper_matches_forward(self):
        conv = Conv1d(3, 5, kernel_size=3, stride=2, dilation=2, rng=np.random.default_rng(0))
        x = np.random.default_rng(2).normal(size=(2, 3, 77))
        out = conv.forward(x)
        assert conv.output_shape((3, 77)) == out.shape[1:]

    def test_channel_mismatch_rejected(self):
        conv = Conv1d(3, 5, 3)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 4, 32)))
        with pytest.raises(ValueError):
            conv.output_shape((4, 32))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Conv1d(0, 1, 3)
        with pytest.raises(ValueError):
            Conv1d(1, 1, 0)
        with pytest.raises(ValueError):
            Conv1d(1, 1, 3, stride=0)
        with pytest.raises(ValueError):
            Conv1d(1, 1, 3, dilation=0)


class TestConv1dKnownValues:
    def test_matches_numpy_correlate_for_simple_kernel(self):
        conv = Conv1d(1, 1, kernel_size=3, padding=0, bias=False, rng=np.random.default_rng(0))
        conv.params["weight"][...] = np.array([[[1.0, 2.0, 3.0]]])
        x = np.arange(6, dtype=float).reshape(1, 1, 6)
        out = conv.forward(x)[0, 0]
        # Cross-correlation of [0..5] with [1,2,3]: position t -> x[t]+2x[t+1]+3x[t+2]
        expected = [0 + 2 * 1 + 3 * 2, 1 + 4 + 9, 2 + 6 + 12, 3 + 8 + 15]
        assert np.allclose(out, expected)

    def test_bias_added_per_channel(self):
        conv = Conv1d(1, 2, kernel_size=1, bias=True, rng=np.random.default_rng(0))
        conv.params["weight"][...] = 0.0
        conv.params["bias"][...] = np.array([1.5, -2.0])
        out = conv.forward(np.zeros((1, 1, 4)))
        assert np.allclose(out[0, 0], 1.5)
        assert np.allclose(out[0, 1], -2.0)

    def test_dilation_skips_samples(self):
        conv = Conv1d(1, 1, kernel_size=2, dilation=3, padding=0, bias=False,
                      rng=np.random.default_rng(0))
        conv.params["weight"][...] = np.array([[[1.0, 1.0]]])
        x = np.arange(8, dtype=float).reshape(1, 1, 8)
        out = conv.forward(x)[0, 0]
        assert np.allclose(out, [0 + 3, 1 + 4, 2 + 5, 3 + 6, 4 + 7])


class TestConv1dGradients:
    @pytest.mark.parametrize("stride,dilation", [(1, 1), (2, 1), (1, 3), (2, 2)])
    def test_weight_and_input_gradients(self, stride, dilation):
        rng = np.random.default_rng(0)
        conv = Conv1d(2, 3, kernel_size=3, stride=stride, dilation=dilation, rng=rng)
        x = rng.normal(size=(2, 2, 20))
        target = rng.normal(size=conv.forward(x).shape)

        def loss():
            return 0.5 * np.sum((conv.forward(x, training=True) - target) ** 2)

        conv.zero_grad()
        out = conv.forward(x, training=True)
        grad_input = conv.backward(out - target)

        # Weight gradient check (a few entries).
        for index in [(0, 0, 0), (2, 1, 2), (1, 0, 1)]:
            numeric = numerical_gradient(loss, conv.params["weight"], index)
            assert conv.grads["weight"][index] == pytest.approx(numeric, rel=1e-4, abs=1e-6)
        # Bias gradient check.
        numeric = numerical_gradient(loss, conv.params["bias"], (1,))
        assert conv.grads["bias"][1] == pytest.approx(numeric, rel=1e-4, abs=1e-6)
        # Input gradient check.
        for index in [(0, 0, 0), (1, 1, 10), (0, 1, 19)]:
            numeric = numerical_gradient(loss, x, index)
            assert grad_input[index] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_backward_without_forward_raises(self):
        conv = Conv1d(1, 1, 3)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 1, 4)))


class TestDense:
    def test_known_values(self):
        dense = Dense(2, 1, rng=np.random.default_rng(0))
        dense.params["weight"][...] = np.array([[2.0, -1.0]])
        dense.params["bias"][...] = np.array([0.5])
        out = dense.forward(np.array([[1.0, 3.0]]))
        assert out[0, 0] == pytest.approx(2.0 - 3.0 + 0.5)

    def test_gradients(self):
        rng = np.random.default_rng(1)
        dense = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss():
            return 0.5 * np.sum((dense.forward(x, training=True) - target) ** 2)

        dense.zero_grad()
        out = dense.forward(x, training=True)
        grad_input = dense.backward(out - target)
        for index in [(0, 0), (2, 3)]:
            numeric = numerical_gradient(loss, dense.params["weight"], index)
            assert dense.grads["weight"][index] == pytest.approx(numeric, rel=1e-5, abs=1e-7)
        numeric = numerical_gradient(loss, x, (1, 2))
        assert grad_input[1, 2] == pytest.approx(numeric, rel=1e-5, abs=1e-7)

    def test_shape_validation(self):
        dense = Dense(3, 2)
        with pytest.raises(ValueError):
            dense.forward(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            dense.output_shape((4,))


class TestReLU:
    def test_forward_and_backward(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        out = relu.forward(x, training=True)
        assert np.allclose(out, [[0.0, 0.0, 2.0]])
        grad = relu.backward(np.ones_like(x))
        assert np.allclose(grad, [[0.0, 0.0, 1.0]])


class TestBatchNorm1d:
    def test_normalizes_in_training_mode(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm1d(3)
        x = rng.normal(5.0, 2.0, size=(8, 3, 50))
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=(0, 2)), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=(0, 2)), 1.0, atol=1e-3)

    def test_running_stats_used_at_inference(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm1d(2, momentum=0.5)
        x = rng.normal(3.0, 1.0, size=(16, 2, 20))
        for _ in range(20):
            bn.forward(x, training=True)
        out = bn.forward(x, training=False)
        # After many updates the running stats approach the batch stats, so
        # inference output should be roughly normalized too.
        assert abs(out.mean()) < 0.2

    def test_gradients(self):
        rng = np.random.default_rng(2)
        bn = BatchNorm1d(2)
        x = rng.normal(size=(4, 2, 6))
        target = rng.normal(size=(4, 2, 6))

        def loss():
            return 0.5 * np.sum((bn.forward(x, training=True) - target) ** 2)

        bn.zero_grad()
        out = bn.forward(x, training=True)
        grad_input = bn.backward(out - target)
        numeric = numerical_gradient(loss, bn.params["gamma"], (1,))
        assert bn.grads["gamma"][1] == pytest.approx(numeric, rel=1e-4, abs=1e-6)
        numeric = numerical_gradient(loss, bn.params["beta"], (0,))
        assert bn.grads["beta"][0] == pytest.approx(numeric, rel=1e-4, abs=1e-6)
        numeric = numerical_gradient(loss, x, (0, 1, 3))
        assert grad_input[0, 1, 3] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BatchNorm1d(0)
        with pytest.raises(ValueError):
            BatchNorm1d(3, momentum=0.0)


class TestPooling:
    def test_avg_pool_values(self):
        pool = AvgPool1d(2)
        x = np.arange(8, dtype=float).reshape(1, 1, 8)
        out = pool.forward(x)
        assert np.allclose(out[0, 0], [0.5, 2.5, 4.5, 6.5])

    def test_avg_pool_gradient_spreads_evenly(self):
        pool = AvgPool1d(2)
        x = np.arange(8, dtype=float).reshape(1, 1, 8)
        pool.forward(x, training=True)
        grad = pool.backward(np.ones((1, 1, 4)))
        assert np.allclose(grad, 0.5)

    def test_avg_pool_truncates_remainder(self):
        pool = AvgPool1d(3)
        x = np.zeros((1, 2, 10))
        assert pool.forward(x).shape == (1, 2, 3)

    def test_global_pool(self):
        pool = GlobalAvgPool1d()
        x = np.arange(12, dtype=float).reshape(1, 2, 6)
        out = pool.forward(x, training=True)
        assert out.shape == (1, 2)
        assert out[0, 0] == pytest.approx(np.mean(np.arange(6)))
        grad = pool.backward(np.ones((1, 2)))
        assert np.allclose(grad, 1.0 / 6.0)

    def test_pool_too_long_rejected(self):
        with pytest.raises(ValueError):
            AvgPool1d(16).forward(np.zeros((1, 1, 8)))


class TestFlattenDropout:
    def test_flatten_roundtrip(self):
        flat = Flatten()
        x = np.random.default_rng(0).normal(size=(3, 4, 5))
        out = flat.forward(x, training=True)
        assert out.shape == (3, 20)
        back = flat.backward(out)
        assert back.shape == x.shape
        assert np.allclose(back, x)

    def test_dropout_identity_at_inference(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((4, 10))
        assert np.allclose(drop.forward(x, training=False), x)

    def test_dropout_scales_kept_units(self):
        drop = Dropout(0.5, rng=np.random.default_rng(1))
        x = np.ones((1, 10000))
        out = drop.forward(x, training=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestConvInferenceLowering:
    """The eval-mode GEMM lowering must match the training-mode im2col."""

    @pytest.mark.parametrize(
        "stride,dilation,padding",
        [(1, 1, "same"), (2, 1, "same"), (1, 4, "same"), (2, 2, 1), (3, 2, 0)],
    )
    def test_matches_training_forward(self, stride, dilation, padding):
        rng = np.random.default_rng(stride * 10 + dilation)
        conv = Conv1d(3, 5, 3, stride=stride, dilation=dilation, padding=padding, rng=rng)
        x = rng.normal(size=(4, 3, 40))
        np.testing.assert_allclose(
            conv.forward(x, training=False),
            conv.forward(x, training=True),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_without_bias(self):
        rng = np.random.default_rng(0)
        conv = Conv1d(2, 3, 5, bias=False, rng=rng)
        x = rng.normal(size=(2, 2, 32))
        np.testing.assert_allclose(
            conv.forward(x, training=False), conv.forward(x, training=True)
        )

    def test_inference_reuses_column_buffer(self):
        rng = np.random.default_rng(1)
        conv = Conv1d(2, 2, 3, rng=rng)
        x = rng.normal(size=(3, 2, 16))
        conv.forward(x, training=False)
        buffer = conv._gemm_cols
        assert buffer is not None
        conv.forward(x, training=False)
        assert conv._gemm_cols is buffer  # stable shape -> same buffer
        conv.forward(rng.normal(size=(5, 2, 16)), training=False)
        assert conv._gemm_cols is not buffer  # new batch shape -> new buffer

    def test_inference_outputs_are_independent_arrays(self):
        rng = np.random.default_rng(2)
        conv = Conv1d(1, 1, 3, rng=rng)
        x = rng.normal(size=(1, 1, 10))
        first = conv.forward(x, training=False)
        again = conv.forward(x + 1.0, training=False)
        assert not np.shares_memory(first, again)

    def test_inference_drops_training_cache(self):
        rng = np.random.default_rng(3)
        conv = Conv1d(1, 2, 3, rng=rng)
        x = rng.normal(size=(2, 1, 12))
        conv.forward(x, training=True)
        assert conv._cache
        conv.forward(x, training=False)
        assert not conv._cache
        with pytest.raises(RuntimeError):
            conv.backward(np.ones((2, 2, 12)))


class TestZeroRowBatches:
    """Every layer must pass a (0, ...) batch through with correct shapes."""

    def test_conv_eval_and_train(self):
        conv = Conv1d(2, 3, 3, rng=np.random.default_rng(0))
        for training in (False, True):
            out = conv.forward(np.zeros((0, 2, 16)), training=training)
            assert out.shape == (0, 3, 16)

    def test_full_stack(self):
        layers = [
            Conv1d(2, 3, 3, rng=np.random.default_rng(0)),
            BatchNorm1d(3),
            ReLU(),
            AvgPool1d(2),
            Flatten(),
            Dense(3 * 8, 1, rng=np.random.default_rng(1)),
        ]
        x = np.zeros((0, 2, 16))
        for layer in layers:
            x = layer.forward(x, training=False)
        assert x.shape == (0, 1)
