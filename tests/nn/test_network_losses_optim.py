"""Tests for Sequential, losses and optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Conv1d, Dense, Flatten, ReLU
from repro.nn.losses import HuberLoss, L1Loss, MSELoss
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam


def tiny_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv1d(1, 2, 3, stride=2, rng=rng),
        ReLU(),
        Flatten(),
        Dense(2 * 8, 1, rng=rng),
    ])


class TestSequential:
    def test_forward_shape(self):
        net = tiny_net()
        out = net.forward(np.zeros((5, 1, 16)))
        assert out.shape == (5, 1)

    def test_parameter_count(self):
        net = tiny_net()
        expected = (2 * 1 * 3 + 2) + (16 * 1 + 1)
        assert net.n_parameters == expected

    def test_state_dict_roundtrip(self):
        net = tiny_net(seed=1)
        other = tiny_net(seed=2)
        x = np.random.default_rng(0).normal(size=(3, 1, 16))
        assert not np.allclose(net.forward(x), other.forward(x))
        other.load_state_dict(net.state_dict())
        assert np.allclose(net.forward(x), other.forward(x))

    def test_load_state_dict_missing_key(self):
        net = tiny_net()
        state = net.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            tiny_net().load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        net = tiny_net()
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            tiny_net().load_state_dict(state)

    def test_add_is_chainable(self):
        net = Sequential().add(Dense(2, 2)).add(ReLU())
        assert len(net) == 2

    def test_backward_propagates_through_all_layers(self):
        net = tiny_net()
        x = np.random.default_rng(3).normal(size=(4, 1, 16))
        out = net.forward(x, training=True)
        grad = net.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestLosses:
    def test_mse_value_and_gradient(self):
        loss = MSELoss()
        pred = np.array([[1.0], [3.0]])
        target = np.array([[0.0], [1.0]])
        assert loss.value(pred, target) == pytest.approx((1 + 4) / 2)
        grad = loss.gradient(pred, target)
        assert np.allclose(grad, [[1.0], [2.0]])

    def test_l1_value_is_mae(self):
        loss = L1Loss()
        pred = np.array([[72.0], [68.0]])
        target = np.array([[70.0], [70.0]])
        assert loss.value(pred, target) == pytest.approx(2.0)

    def test_huber_quadratic_then_linear(self):
        loss = HuberLoss(delta=1.0)
        small = loss.value(np.array([[0.5]]), np.array([[0.0]]))
        large = loss.value(np.array([[10.0]]), np.array([[0.0]]))
        assert small == pytest.approx(0.125)
        assert large == pytest.approx(1.0 * (10.0 - 0.5))

    def test_huber_gradient_clipped(self):
        loss = HuberLoss(delta=2.0)
        grad = loss.gradient(np.array([[100.0]]), np.array([[0.0]]))
        assert grad[0, 0] == pytest.approx(2.0)

    def test_loss_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(6, 1))
        target = rng.normal(size=(6, 1))
        for loss in (MSELoss(), HuberLoss(1.0)):
            grad = loss.gradient(pred, target)
            eps = 1e-6
            pred[2, 0] += eps
            plus = loss.value(pred, target)
            pred[2, 0] -= 2 * eps
            minus = loss.value(pred, target)
            pred[2, 0] += eps
            assert grad[2, 0] == pytest.approx((plus - minus) / (2 * eps), rel=1e-4, abs=1e-8)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MSELoss().value(np.zeros((2, 1)), np.zeros((3, 1)))

    def test_invalid_huber_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestOptimizers:
    def _quadratic_problem(self, optimizer_factory, steps=200):
        """Minimize ||Wx - y||^2 over a fixed batch with a single Dense layer."""
        rng = np.random.default_rng(0)
        net = Sequential([Dense(3, 1, rng=rng)])
        true_w = np.array([[1.0, -2.0, 0.5]])
        x = rng.normal(size=(64, 3))
        y = x @ true_w.T
        optimizer = optimizer_factory(net)
        loss = MSELoss()
        for _ in range(steps):
            optimizer.zero_grad()
            pred = net.forward(x, training=True)
            net.backward(loss.gradient(pred, y))
            optimizer.step()
        return loss.value(net.forward(x), y), net.layers[0].params["weight"]

    def test_sgd_converges(self):
        final, weight = self._quadratic_problem(lambda n: SGD(n, learning_rate=0.05), steps=300)
        assert final < 1e-3
        assert np.allclose(weight, [[1.0, -2.0, 0.5]], atol=0.05)

    def test_sgd_momentum_converges_faster_than_plain(self):
        plain, _ = self._quadratic_problem(lambda n: SGD(n, learning_rate=0.01), steps=60)
        momentum, _ = self._quadratic_problem(
            lambda n: SGD(n, learning_rate=0.01, momentum=0.9), steps=60
        )
        assert momentum < plain

    def test_adam_converges(self):
        final, weight = self._quadratic_problem(lambda n: Adam(n, learning_rate=0.05), steps=300)
        assert final < 1e-3
        assert np.allclose(weight, [[1.0, -2.0, 0.5]], atol=0.05)

    def test_weight_decay_shrinks_weights(self):
        rng = np.random.default_rng(1)
        net = Sequential([Dense(4, 1, rng=rng)])
        initial_norm = np.linalg.norm(net.layers[0].params["weight"])
        optimizer = SGD(net, learning_rate=0.1, weight_decay=0.5)
        x = np.zeros((8, 4))
        y = np.zeros((8, 1))
        loss = MSELoss()
        # With zero inputs the loss gradient vanishes, so only the decay term
        # acts: the weight norm must shrink by (1 - lr * wd) per step.
        for _ in range(100):
            optimizer.zero_grad()
            pred = net.forward(x, training=True)
            net.backward(loss.gradient(pred, y))
            optimizer.step()
        expected = initial_norm * (1 - 0.1 * 0.5) ** 100
        assert np.linalg.norm(net.layers[0].params["weight"]) == pytest.approx(expected, rel=1e-6)

    def test_invalid_hyperparameters(self):
        net = Sequential([Dense(2, 1)])
        with pytest.raises(ValueError):
            SGD(net, learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(net, learning_rate=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(net, learning_rate=0.1, beta1=1.0)
        with pytest.raises(ValueError):
            Adam(net, learning_rate=0.1, weight_decay=-1.0)


class TestFoldBatchnorm:
    def bn_net(self, seed=0):
        from repro.nn.layers import BatchNorm1d

        rng = np.random.default_rng(seed)
        net = Sequential([
            Conv1d(2, 4, 3, stride=2, rng=rng),
            BatchNorm1d(4),
            ReLU(),
            Conv1d(4, 4, 3, dilation=2, bias=False, rng=rng),
            BatchNorm1d(4),
            ReLU(),
            Flatten(),
            Dense(4 * 8, 1, rng=rng),
        ])
        # Non-trivial running statistics, as a trained network would have.
        x = rng.normal(size=(16, 2, 16)) * 2.0 + 0.5
        net.forward(x, training=True)
        return net

    def test_folded_matches_eval_forward(self):
        from repro.nn.network import fold_batchnorm

        net = self.bn_net()
        folded = fold_batchnorm(net)
        x = np.random.default_rng(1).normal(size=(8, 2, 16))
        np.testing.assert_allclose(
            folded.forward(x, training=False),
            net.forward(x, training=False),
            rtol=1e-10,
            atol=1e-12,
        )

    def test_folded_structure(self):
        from repro.nn.layers import BatchNorm1d
        from repro.nn.network import fold_batchnorm

        folded = fold_batchnorm(self.bn_net())
        assert not any(isinstance(l, BatchNorm1d) for l in folded.layers)
        convs = [l for l in folded.layers if isinstance(l, Conv1d)]
        assert all(c.bn_folded and c.use_bias for c in convs)

    def test_fold_shares_nothing_with_the_original(self):
        from repro.nn.network import fold_batchnorm

        net = self.bn_net()
        folded = fold_batchnorm(net)
        x = np.random.default_rng(2).normal(size=(4, 2, 16))
        before = folded.forward(x, training=False)
        for _, params in net.parameters():
            for value in params.values():
                value[...] = 0.0
        np.testing.assert_array_equal(folded.forward(x, training=False), before)

    def test_bn_without_preceding_conv_is_kept(self):
        from repro.nn.layers import BatchNorm1d
        from repro.nn.network import fold_batchnorm

        net = Sequential([BatchNorm1d(2), Conv1d(2, 2, 3, rng=np.random.default_rng(0))])
        folded = fold_batchnorm(net)
        assert isinstance(folded.layers[0], BatchNorm1d)
        x = np.random.default_rng(1).normal(size=(3, 2, 12))
        np.testing.assert_allclose(
            folded.forward(x, training=False), net.forward(x, training=False)
        )
