"""Tests for parameter / MAC counting."""

import numpy as np
import pytest

from repro.nn.layers import AvgPool1d, BatchNorm1d, Conv1d, Dense, Flatten, ReLU
from repro.nn.network import Sequential
from repro.nn.ops_count import count_macs, count_parameters, layer_summary, summary_table


class TestCounting:
    def test_dense_macs_and_params(self):
        net = Sequential([Dense(10, 4)])
        assert count_parameters(net) == 10 * 4 + 4
        assert count_macs(net, (10,)) == 40

    def test_conv_macs_formula(self):
        net = Sequential([Conv1d(3, 8, 5, stride=2)])
        # "same" padding with stride 2 on length 64 -> 32 outputs.
        assert count_macs(net, (3, 64)) == 8 * 3 * 5 * 32
        assert count_parameters(net) == 8 * 3 * 5 + 8

    def test_elementwise_layers_counted_by_size(self):
        net = Sequential([Conv1d(1, 2, 3), ReLU(), BatchNorm1d(2)])
        macs = count_macs(net, (1, 16))
        conv_macs = 2 * 1 * 3 * 16
        assert macs == conv_macs + 2 * 16 + 2 * 16

    def test_pool_and_flatten(self):
        net = Sequential([AvgPool1d(4), Flatten(), Dense(8, 1)])
        summary = layer_summary(net, (2, 16))
        assert summary[0].output_shape == (2, 4)
        assert summary[1].output_shape == (8,)
        assert summary[2].macs == 8

    def test_summary_shapes_chain(self):
        rng = np.random.default_rng(0)
        net = Sequential([
            Conv1d(4, 6, 3, stride=2, rng=rng),
            ReLU(),
            Conv1d(6, 6, 3, dilation=2, rng=rng),
            Flatten(),
            Dense(6 * 128, 1, rng=rng),
        ])
        rows = layer_summary(net, (4, 256))
        assert rows[0].output_shape == (6, 128)
        assert rows[2].output_shape == (6, 128)
        assert rows[-1].output_shape == (1,)
        # The forward pass agrees with the static shape analysis.
        out = net.forward(np.zeros((1, 4, 256)))
        assert out.shape == (1, 1)

    def test_summary_table_contains_total(self):
        net = Sequential([Dense(4, 2)])
        table = summary_table(net, (4,))
        assert "TOTAL" in table
        assert "10" in table  # 4*2+2 parameters

    def test_total_is_sum_of_layers(self):
        rng = np.random.default_rng(1)
        net = Sequential([Conv1d(2, 3, 3, rng=rng), ReLU(), Flatten(), Dense(3 * 32, 2, rng=rng)])
        rows = layer_summary(net, (2, 32))
        assert count_macs(net, (2, 32)) == sum(r.macs for r in rows)
        assert count_parameters(net) == sum(r.parameters for r in rows)


class TestFoldedCounting:
    """Conv+BN folding must not change the reported MAC totals."""

    def test_folded_network_reports_reference_macs(self):
        from repro.nn.network import fold_batchnorm

        net = Sequential([
            Conv1d(2, 4, 3, rng=np.random.default_rng(0)),
            BatchNorm1d(4),
            ReLU(),
            Conv1d(4, 3, 3, dilation=2, rng=np.random.default_rng(1)),
            BatchNorm1d(3),
            Flatten(),
            Dense(3 * 16, 1, rng=np.random.default_rng(2)),
        ])
        shape = (2, 16)
        assert count_macs(fold_batchnorm(net), shape) == count_macs(net, shape)

    def test_timeppg_variants_report_reference_macs_when_folded(self):
        from repro.models.timeppg import (
            TIMEPPG_BIG_CONFIG,
            TIMEPPG_SMALL_CONFIG,
            build_timeppg_network,
        )
        from repro.nn.network import fold_batchnorm

        for config in (TIMEPPG_SMALL_CONFIG, TIMEPPG_BIG_CONFIG):
            net = build_timeppg_network(config)
            shape = (config.input_channels, config.input_length)
            assert count_macs(fold_batchnorm(net), shape) == count_macs(net, shape)

    def test_folded_conv_charges_the_absorbed_normalization(self):
        conv = Conv1d(2, 4, 3, rng=np.random.default_rng(0))
        plain = count_macs(Sequential([conv]), (2, 16))
        conv.bn_folded = True
        assert count_macs(Sequential([conv]), (2, 16)) == plain + 4 * 16
