"""Dtype threading through the NN stack.

Pins the float32 engine's nn-layer contract: parameterized layers carry
a first-class ``dtype`` (weights, buffers, outputs), ``fold_batchnorm``
folds in the source precision and casts once, and a frozen float32
TimePPG runs its whole forward in float32.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtypes import DEFAULT_FLOAT_DTYPE, as_floating, resolve_dtype
from repro.models.timeppg import TimePPGConfig, TimePPGPredictor
from repro.nn.layers import AvgPool1d, BatchNorm1d, Conv1d, Dense, Flatten, ReLU
from repro.nn.network import Sequential, fold_batchnorm

TINY = TimePPGConfig(
    name="TimePPG-Big",
    input_length=32,
    block_channels=(2, 2),
    kernel_size=3,
    head_pool=2,
    head_hidden=0,
)


class TestResolveDtype:
    def test_defaults_to_float64(self):
        assert resolve_dtype(None) == np.dtype("float64")
        assert DEFAULT_FLOAT_DTYPE == np.dtype("float64")

    def test_rejects_unsupported(self):
        with pytest.raises(ValueError):
            resolve_dtype("float16")
        with pytest.raises(ValueError):
            resolve_dtype(np.int32)

    def test_as_floating_preserves_float_and_promotes_int(self):
        assert as_floating(np.zeros(3, dtype=np.float32)).dtype == np.float32
        assert as_floating(np.zeros(3, dtype=np.int64)).dtype == np.float64


class TestLayerDtype:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_conv_dense_allocate_and_compute_in_dtype(self, dtype):
        conv = Conv1d(1, 3, 3, rng=np.random.default_rng(0), dtype=dtype)
        dense = Dense(6, 2, rng=np.random.default_rng(1), dtype=dtype)
        assert conv.params["weight"].dtype == dtype
        assert conv.params["bias"].dtype == dtype
        assert dense.params["weight"].dtype == dtype
        x = np.random.default_rng(2).standard_normal((4, 1, 8))
        out = conv.forward(x)  # float64 input coerced to the layer dtype
        assert out.dtype == np.dtype(dtype)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_batchnorm_buffers_in_dtype(self, dtype):
        bn = BatchNorm1d(3, dtype=dtype)
        assert bn.running_mean.dtype == dtype
        assert bn.running_var.dtype == dtype
        out = bn.forward(np.zeros((2, 3, 8)), training=False)
        assert out.dtype == np.dtype(dtype)

    def test_stateless_layers_preserve_floating_dtype(self):
        x32 = np.random.default_rng(0).standard_normal((2, 3, 8)).astype(np.float32)
        assert ReLU().forward(x32).dtype == np.float32
        assert AvgPool1d(2).forward(x32).dtype == np.float32
        assert Flatten().forward(x32).dtype == np.float32

    def test_to_dtype_casts_params_and_is_chainable(self):
        net = Sequential([
            Conv1d(1, 2, 3, rng=np.random.default_rng(0)),
            ReLU(),
            Flatten(),
            Dense(2 * 16, 1, rng=np.random.default_rng(1)),
        ])
        assert net.dtype == np.dtype("float64")
        assert net.to_dtype("float32") is net
        assert net.dtype == np.dtype("float32")
        for layer in (net.layers[0], net.layers[3]):
            for value in layer.params.values():
                assert value.dtype == np.float32


class TestFoldDtype:
    def _bn_net(self):
        rng = np.random.default_rng(3)
        net = Sequential([
            Conv1d(1, 4, 3, rng=rng),
            BatchNorm1d(4),
            ReLU(),
            Flatten(),
            Dense(4 * 16, 1, rng=rng),
        ])
        net.forward(rng.standard_normal((16, 1, 16)), training=True)
        return net

    def test_fold_in_source_precision_cast_once(self):
        """float64 fold then cast == the documented folding semantics.

        Folding at float32 must NOT run the fold arithmetic in float32;
        it folds at the source (float64) precision and rounds the folded
        weights once, so each folded parameter is the correctly rounded
        float32 image of the float64 fold.
        """
        net = self._bn_net()
        folded64 = fold_batchnorm(net)
        folded32 = fold_batchnorm(net, dtype="float32")
        assert folded32.dtype == np.dtype("float32")
        for l64, l32 in zip(folded64.layers, folded32.layers):
            for key in l64.params:
                np.testing.assert_array_equal(
                    l64.params[key].astype(np.float32), l32.params[key]
                )

    def test_frozen_float32_timeppg_runs_pure_float32(self):
        predictor = TimePPGPredictor(TINY, seed=7).freeze(dtype="float32")
        ppg = np.random.default_rng(5).standard_normal((6, 32))
        accel = np.random.default_rng(6).standard_normal((6, 32, 3))
        batch = predictor.prepare_input(ppg, accel)
        assert batch.dtype == np.float32
        predictions = predictor.predict(ppg, accel)
        assert predictions.dtype == np.float32
        assert np.all((predictions >= 30.0) & (predictions <= 220.0))

    def test_float32_predictions_match_float64_within_tolerance(self):
        p64 = TimePPGPredictor(TINY, seed=7).freeze()
        p32 = TimePPGPredictor(TINY, seed=7).freeze(dtype="float32")
        ppg = np.random.default_rng(8).standard_normal((8, 32))
        accel = np.random.default_rng(9).standard_normal((8, 32, 3))
        out64 = p64.predict(ppg, accel)
        out32 = p32.predict(ppg, accel)
        np.testing.assert_allclose(out32.astype(np.float64), out64, atol=1e-3, rtol=1e-5)

    def test_set_inference_dtype_refreezes(self):
        predictor = TimePPGPredictor(TINY, seed=7).freeze()
        predictor.set_inference_dtype("float32")
        ppg = np.random.default_rng(10).standard_normal((4, 32))
        accel = np.random.default_rng(11).standard_normal((4, 32, 3))
        assert predictor.predict(ppg, accel).dtype == np.float32
        predictor.set_inference_dtype("float64")
        assert predictor.predict(ppg, accel).dtype == np.float64
