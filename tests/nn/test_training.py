"""Tests for the trainer (mini-batches, validation, early stopping)."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU
from repro.nn.losses import MSELoss
from repro.nn.network import Sequential
from repro.nn.training import Trainer, TrainerConfig


def regression_problem(n=256, seed=0):
    """y = sin(3 x0) + 0.5 x1, a smooth nonlinear target."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = np.sin(3 * x[:, 0]) + 0.5 * x[:, 1]
    return x, y[:, None]


def mlp(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(2, 32, rng=rng), ReLU(), Dense(32, 1, rng=rng)])


class TestTrainerConfig:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainerConfig(patience=0)


class TestTraining:
    def test_loss_decreases(self):
        x, y = regression_problem()
        trainer = Trainer(mlp(), config=TrainerConfig(epochs=15, batch_size=32, learning_rate=1e-2))
        history = trainer.fit(x, y)
        assert history.n_epochs == 15
        assert history.train_loss[-1] < 0.5 * history.train_loss[0]

    def test_fit_learns_the_function(self):
        x, y = regression_problem(n=512)
        trainer = Trainer(mlp(), config=TrainerConfig(epochs=40, batch_size=32, learning_rate=1e-2,
                                                      patience=None))
        trainer.fit(x, y)
        x_test, y_test = regression_problem(n=128, seed=99)
        assert trainer.evaluate(x_test, y_test) < 0.05

    def test_early_stopping_triggers(self):
        x, y = regression_problem(n=64, seed=1)
        x_val, y_val = regression_problem(n=64, seed=2)
        config = TrainerConfig(epochs=200, batch_size=16, learning_rate=5e-2, patience=3)
        trainer = Trainer(mlp(seed=1), config=config)
        history = trainer.fit(x, y, x_val, y_val)
        assert history.n_epochs < 200
        assert history.stopped_early

    def test_best_weights_restored(self):
        x, y = regression_problem(n=128, seed=3)
        x_val, y_val = regression_problem(n=128, seed=4)
        config = TrainerConfig(epochs=30, batch_size=16, learning_rate=3e-2, patience=5)
        trainer = Trainer(mlp(seed=3), config=config)
        history = trainer.fit(x, y, x_val, y_val)
        final_val = trainer.evaluate(x_val, y_val)
        # The restored model matches the best recorded validation loss.
        assert final_val == pytest.approx(min(history.val_loss), rel=1e-6)

    def test_predict_shape_and_batching(self):
        x, y = regression_problem(n=70)
        trainer = Trainer(mlp(), config=TrainerConfig(epochs=1, batch_size=16))
        trainer.fit(x, y)
        predictions = trainer.predict(x, batch_size=8)
        assert predictions.shape == (70, 1)

    def test_empty_training_set_rejected(self):
        trainer = Trainer(mlp())
        with pytest.raises(ValueError):
            trainer.fit(np.empty((0, 2)), np.empty((0, 1)))

    def test_reproducible_given_seed(self):
        x, y = regression_problem(n=64)
        config = TrainerConfig(epochs=3, batch_size=16, seed=5)
        h1 = Trainer(mlp(seed=7), config=config).fit(x, y)
        h2 = Trainer(mlp(seed=7), config=config).fit(x, y)
        assert np.allclose(h1.train_loss, h2.train_loss)
