"""Tests for int8 post-training quantization."""

import numpy as np
import pytest

from repro.nn.layers import Conv1d, Dense, Flatten, ReLU
from repro.nn.network import Sequential
from repro.nn.quantization import (
    QuantizationSpec,
    QuantizedSequential,
    asymmetric_spec,
    quantization_error,
    quantize_network,
    symmetric_spec,
)


class TestQuantizationSpec:
    def test_roundtrip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-3.0, 3.0, size=1000)
        spec = symmetric_spec(x)
        recovered = spec.fake_quantize(x)
        assert np.max(np.abs(recovered - x)) <= spec.scale / 2 + 1e-12

    def test_symmetric_spec_zero_point_is_zero(self):
        spec = symmetric_spec(np.array([-2.0, 1.0]))
        assert spec.zero_point == 0
        assert spec.scale == pytest.approx(2.0 / 127)

    def test_asymmetric_spec_covers_range(self):
        x = np.array([0.0, 10.0])
        spec = asymmetric_spec(x)
        assert spec.dequantize(spec.quantize(np.array([0.0])))[0] == pytest.approx(0.0, abs=spec.scale)
        assert spec.dequantize(spec.quantize(np.array([10.0])))[0] == pytest.approx(10.0, abs=spec.scale)

    def test_quantize_clips_to_grid(self):
        spec = QuantizationSpec(scale=0.1, zero_point=0)
        q = spec.quantize(np.array([1e6, -1e6]))
        assert q[0] == 127
        assert q[1] == -128

    def test_constant_tensor_does_not_divide_by_zero(self):
        spec = symmetric_spec(np.zeros(10))
        assert np.all(spec.fake_quantize(np.zeros(10)) == 0.0)


def small_regressor(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv1d(1, 4, 3, stride=2, rng=rng),
        ReLU(),
        Conv1d(4, 4, 3, dilation=2, rng=rng),
        ReLU(),
        Flatten(),
        Dense(4 * 16, 1, rng=rng),
    ])


class TestQuantizeNetwork:
    def _trained_like_network(self):
        """A network with non-trivial weights (scaled random initialization)."""
        net = small_regressor(seed=3)
        rng = np.random.default_rng(4)
        for layer in net.layers:
            for key in layer.params:
                layer.params[key] += rng.normal(0, 0.2, size=layer.params[key].shape)
        return net

    def test_quantized_output_close_to_float(self):
        float_net = self._trained_like_network()
        reference = small_regressor(seed=3)
        reference.load_state_dict(float_net.state_dict())

        rng = np.random.default_rng(5)
        calibration = rng.normal(size=(32, 1, 32))
        quantized = quantize_network(float_net, calibration)
        test_batch = rng.normal(size=(16, 1, 32))
        float_out = reference.forward(test_batch)
        quant_out = quantized.forward(test_batch)
        scale = np.std(float_out) + 1e-9
        assert np.max(np.abs(float_out - quant_out)) / scale < 0.15

    def test_error_decreases_with_bit_width(self):
        rng = np.random.default_rng(6)
        calibration = rng.normal(size=(32, 1, 32))
        test_batch = rng.normal(size=(16, 1, 32))
        errors = {}
        for bits in (4, 8):
            float_net = self._trained_like_network()
            reference = small_regressor(seed=3)
            reference.load_state_dict(float_net.state_dict())
            quantized = quantize_network(float_net, calibration, n_bits=bits)
            errors[bits] = quantization_error(reference, quantized, test_batch)
        assert errors[8] < errors[4]

    def test_weight_bytes_accounts_one_byte_per_weight(self):
        float_net = self._trained_like_network()
        quantized = quantize_network(float_net, np.zeros((4, 1, 32)))
        conv0 = float_net.layers[0]
        dense = float_net.layers[-1]
        expected = (
            conv0.params["weight"].size + 4 * conv0.params["bias"].size
            + float_net.layers[2].params["weight"].size + 4 * float_net.layers[2].params["bias"].size
            + dense.params["weight"].size + 4 * dense.params["bias"].size
        )
        assert quantized.weight_bytes == expected

    def test_weights_land_on_the_int8_grid(self):
        float_net = self._trained_like_network()
        quantized = quantize_network(float_net, np.zeros((4, 1, 32)))
        for i, spec_map in quantized.weight_specs.items():
            weight = float_net.layers[i].params["weight"]
            spec = spec_map["weight"]
            grid = np.round(weight / spec.scale)
            assert np.allclose(weight, grid * spec.scale, atol=1e-9)
            assert np.all(np.abs(grid) <= 127)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            quantize_network(small_regressor(), np.zeros((0, 1, 32)))
        with pytest.raises(ValueError):
            quantize_network(small_regressor(), np.zeros((4, 1, 32)), n_bits=1)

    def test_quantized_wrapper_is_callable(self):
        float_net = self._trained_like_network()
        quantized = quantize_network(float_net, np.zeros((4, 1, 32)))
        assert isinstance(quantized, QuantizedSequential)
        out = quantized(np.zeros((2, 1, 32)))
        assert out.shape == (2, 1)


class TestFoldedQuantization:
    """Deployment order: fold batch norm first, then quantize the result."""

    def bn_net(self, seed=0):
        from repro.nn.layers import BatchNorm1d

        rng = np.random.default_rng(seed)
        net = Sequential([
            Conv1d(1, 4, 3, stride=2, rng=rng),
            BatchNorm1d(4),
            ReLU(),
            Flatten(),
            Dense(4 * 16, 1, rng=rng),
        ])
        net.forward(rng.normal(size=(8, 1, 32)), training=True)
        return net

    def test_fold_bn_preserves_the_float_network(self):
        net = self.bn_net()
        state = net.state_dict()
        calibration = np.random.default_rng(1).normal(size=(8, 1, 32))
        quantized = quantize_network(net, calibration, fold_bn=True)
        for key, value in net.state_dict().items():
            np.testing.assert_array_equal(value, state[key])
        assert quantized.network is not net

    def test_folded_quantization_stays_close_to_float(self):
        net = self.bn_net()
        calibration = np.random.default_rng(2).normal(size=(16, 1, 32))
        x = np.random.default_rng(3).normal(size=(8, 1, 32))
        reference = net.forward(x, training=False)
        quantized = quantize_network(net, calibration, fold_bn=True)
        scale = np.abs(reference).max()
        assert np.mean(np.abs(quantized.forward(x) - reference)) < 0.1 * scale + 0.1

    def test_folded_quantized_network_has_no_batchnorm(self):
        from repro.nn.layers import BatchNorm1d

        net = self.bn_net()
        calibration = np.random.default_rng(4).normal(size=(8, 1, 32))
        quantized = quantize_network(net, calibration, fold_bn=True)
        assert not any(isinstance(l, BatchNorm1d) for l in quantized.network.layers)


def _trained(net, seed):
    rng = np.random.default_rng(seed)
    for layer in net.layers:
        for key in layer.params:
            layer.params[key] += rng.normal(0, 0.2, size=layer.params[key].shape)
    return net


class TestIntegerAccumulationPath:
    """The true int8 engine against the fake-quantize float reference.

    On grid-exact networks (Conv/Dense separated only by ReLU, Flatten
    and inference Dropout) the integer path's activation codes must match
    the fake-quantize reference *exactly*: the int32 accumulator computes
    the same sum the float64 reference computes, so both round onto the
    same grid point (see the module docstring of repro.nn.quantization).
    """

    def _quantized(self, seed=0, n=32):
        net = _trained(small_regressor(seed=3), seed=4 + seed)
        rng = np.random.default_rng(10 + seed)
        quantized = quantize_network(net, rng.normal(size=(n, 1, 32)))
        # Inputs on the int8 grid: the domain where the equivalence is exact.
        x = quantized.input_spec.fake_quantize(rng.normal(size=(16, 1, 32)))
        return quantized, x

    def _reference_codes(self, quantized, x):
        last = max(quantized.activation_specs)
        return quantized.activation_specs[last].quantize(quantized.forward(x))

    def test_codes_match_fake_quantize_reference_exactly(self):
        for seed in range(3):
            quantized, x = self._quantized(seed=seed)
            codes = quantized.forward_integer(x, return_codes=True)
            assert codes.dtype == np.int8
            np.testing.assert_array_equal(
                codes.astype(np.int32), self._reference_codes(quantized, x)
            )

    def test_dequantized_output_is_float32_on_the_same_grid(self):
        quantized, x = self._quantized()
        out = quantized.forward_integer(x)
        assert out.dtype == np.float32
        ref = quantized.forward(x)  # float64 fake reference, same grid points
        last = max(quantized.activation_specs)
        scale = quantized.activation_specs[last].scale
        # Same codes -> same grid values up to the float32 cast of the output.
        assert np.max(np.abs(out.astype(np.float64) - ref)) <= scale * 1e-6 + 1e-6

    def test_zero_row_batch(self):
        quantized, _ = self._quantized()
        out = quantized.forward_integer(np.empty((0, 1, 32)))
        assert out.shape == (0, 1)
        assert out.dtype == np.float32
        codes = quantized.forward_integer(np.empty((0, 1, 32)), return_codes=True)
        assert codes.shape == (0, 1)
        assert codes.dtype == np.int8

    def test_signed_zero_and_denormal_weights(self):
        net = _trained(small_regressor(seed=5), seed=6)
        weight = net.layers[0].params["weight"]
        weight[0, 0, 0] = 0.0
        weight[0, 0, 1] = -0.0
        weight[1, 0, 0] = 5e-324  # smallest positive denormal
        rng = np.random.default_rng(7)
        quantized = quantize_network(net, rng.normal(size=(32, 1, 32)))
        x = quantized.input_spec.fake_quantize(rng.normal(size=(8, 1, 32)))
        codes = quantized.forward_integer(x, return_codes=True)
        np.testing.assert_array_equal(
            codes.astype(np.int32), self._reference_codes(quantized, x)
        )

    def test_integer_weight_codes_recovered_losslessly(self):
        quantized, _ = self._quantized()
        for i, spec_map in quantized.weight_specs.items():
            codes = quantized._weight_codes_for(i)
            assert codes.dtype == np.int8
            np.testing.assert_allclose(
                codes.astype(np.float64) * spec_map["weight"].scale,
                quantized.network.layers[i].params["weight"],
                rtol=0,
                atol=0,
            )

    def test_missing_input_spec_raises(self):
        quantized, x = self._quantized()
        stripped = QuantizedSequential(
            quantized.network, quantized.weight_specs, quantized.activation_specs
        )
        with pytest.raises(ValueError, match="input_spec"):
            stripped.forward_integer(x)

    def test_wide_grids_rejected(self):
        net = _trained(small_regressor(seed=8), seed=9)
        rng = np.random.default_rng(11)
        quantized = quantize_network(net, rng.normal(size=(8, 1, 32)), n_bits=12)
        with pytest.raises(ValueError, match="int8"):
            quantized.forward_integer(rng.normal(size=(2, 1, 32)))

    def test_pooled_network_reenters_through_calibrated_spec(self):
        from repro.nn.layers import AvgPool1d, Dropout

        rng = np.random.default_rng(12)
        net = _trained(
            Sequential([
                Conv1d(1, 4, 3, rng=rng),
                ReLU(),
                AvgPool1d(2),
                Conv1d(4, 2, 3, rng=rng),
                ReLU(),
                Flatten(),
                Dense(2 * 16, 1, rng=rng),
                Dropout(0.5),
            ]),
            13,
        )
        quantized = quantize_network(net, rng.normal(size=(32, 1, 32)))
        x = rng.normal(size=(8, 1, 32))
        fake = quantized.forward(x)
        integer = quantized.forward_integer(x)
        # Pooling leaves the grid, so exactness is not guaranteed — but the
        # re-entry spec keeps the two paths within a few activation steps.
        span = np.abs(fake).max() + 1.0
        assert np.mean(np.abs(integer.astype(np.float64) - fake)) < 0.1 * span


class TestQuantizedMAEEnvelope:
    """Paper envelope: int8 deployment must not visibly degrade the MAE."""

    def test_quantized_timeppg_mae_within_envelope(self):
        from repro.data.synthetic import SyntheticDaliaGenerator, SyntheticDatasetConfig
        from repro.models.timeppg import TimePPGConfig, TimePPGPredictor

        dataset = SyntheticDaliaGenerator(
            SyntheticDatasetConfig(n_subjects=2, activity_duration_s=30.0, seed=0)
        ).generate_windowed()
        subject = dataset.subjects[0]
        config = TimePPGConfig(
            name="TimePPG-Big",
            input_length=subject.ppg_windows.shape[1],
            block_channels=(2, 2, 2),
            kernel_size=3,
            head_pool=2,
            head_hidden=0,
        )
        predictor = TimePPGPredictor(config, seed=7)
        float_pred = predictor.predict(subject.ppg_windows, subject.accel_windows)
        float_mae = np.mean(np.abs(float_pred - subject.hr))

        import copy

        calibration = predictor.prepare_input(
            subject.ppg_windows, subject.accel_windows
        )
        predictor.quantized = quantize_network(
            copy.deepcopy(predictor.network), np.asarray(calibration, dtype=float)
        )
        quant_pred = predictor.predict(subject.ppg_windows, subject.accel_windows)
        quant_mae = np.mean(np.abs(quant_pred - subject.hr))

        # The paper ships int8 TimePPG models whose MAE matches the float
        # models to within a fraction of a BPM; the synthetic corpus must
        # reproduce that envelope.
        assert quant_mae - float_mae < 1.0

        # And the true integer engine agrees with the fake-quantize MAE.
        integer_out = predictor.quantized.forward_integer(
            np.asarray(calibration, dtype=float)
        )
        integer_pred = np.clip(integer_out.reshape(-1), 30.0, 220.0)
        integer_mae = np.mean(np.abs(integer_pred - subject.hr))
        assert abs(integer_mae - quant_mae) < 0.5


class TestIntegerFleetDeployment:
    """The int8 opt-in on the fleet runtime (``set_inference_dtype("int8")``)."""

    def test_int8_fleet_run_routes_identically_with_bounded_mae_drift(self):
        import copy

        from repro.core.decision_engine import Constraint
        from repro.core.runtime import CHRISRuntime
        from repro.data.synthetic import SyntheticDaliaGenerator, SyntheticDatasetConfig
        from repro.eval.experiment import CalibratedExperiment
        from repro.models.timeppg import TimePPGConfig, TimePPGPredictor

        experiment = CalibratedExperiment.build(
            seed=0, n_subjects=3, activity_duration_s=40.0
        )
        subjects = (
            SyntheticDaliaGenerator(
                SyntheticDatasetConfig(n_subjects=3, activity_duration_s=30.0, seed=0)
            )
            .generate_windowed()
            .subjects
        )
        config = TimePPGConfig(
            name="TimePPG-Big",
            input_length=subjects[0].ppg_windows.shape[1],
            block_channels=(2, 2, 2),
            kernel_size=3,
            head_pool=2,
            head_hidden=0,
        )

        def build_runtime(integer: bool):
            zoo = copy.deepcopy(experiment.zoo)
            predictor = TimePPGPredictor(config, seed=7).freeze()
            calibration = predictor.prepare_input(
                subjects[0].ppg_windows, subjects[0].accel_windows
            )
            predictor.quantized = quantize_network(
                copy.deepcopy(predictor.network), np.asarray(calibration, dtype=float)
            )
            zoo.entry("TimePPG-Big").predictor = predictor
            # The opt-in happens *after* runtime construction: the fleet
            # keeps its float64 planning dtype, only TimePPG's forward
            # switches to the integer engine.
            runtime = CHRISRuntime(
                zoo=zoo, engine=experiment.engine, system=experiment.system
            )
            if integer:
                predictor.set_inference_dtype("int8")
            return runtime, predictor

        constraint = Constraint.max_mae(6.0)
        float_runtime, _ = build_runtime(integer=False)
        int8_runtime, int8_predictor = build_runtime(integer=True)

        integer_calls = 0
        real_forward_integer = int8_predictor.quantized.forward_integer

        def counting_forward_integer(x, **kwargs):
            nonlocal integer_calls
            integer_calls += 1
            return real_forward_integer(x, **kwargs)

        int8_predictor.quantized.forward_integer = counting_forward_integer

        float_fleet = float_runtime.run_many(
            subjects, constraint, use_oracle_difficulty=True
        )
        int8_fleet = int8_runtime.run_many(
            subjects, constraint, use_oracle_difficulty=True
        )
        assert integer_calls > 0, "int8 opt-in never reached forward_integer"

        for subject in subjects:
            ref = float_fleet.results[subject.subject_id]
            res = int8_fleet.results[subject.subject_id]
            # Planning never looks at predictions, so the int8 fleet must
            # route every window exactly like the fake-quantized float one.
            np.testing.assert_array_equal(ref.model_names, res.model_names)
            routed = ref.model_names.astype(str) == "TimePPG-Big"
            assert routed.any(), "no window was routed to the quantized model"
            # Windows served by other models never touch the int8 engine.
            np.testing.assert_array_equal(
                ref.predicted_hr[~routed], res.predicted_hr[~routed]
            )
            # Paper envelope at fleet level: deploying the true integer
            # engine moves the served MAE by well under a BPM relative to
            # the fake-quantized reference.
            float_mae = np.mean(np.abs(ref.predicted_hr[routed] - subject.hr[routed]))
            int8_mae = np.mean(np.abs(res.predicted_hr[routed] - subject.hr[routed]))
            assert abs(int8_mae - float_mae) < 1.0

    def test_int8_optin_requires_calibrated_quantized_network(self):
        from repro.models.timeppg import TimePPGConfig, TimePPGPredictor

        predictor = TimePPGPredictor(
            TimePPGConfig(
                name="TimePPG-Big",
                input_length=32,
                block_channels=(2, 2),
                kernel_size=3,
                head_pool=2,
                head_hidden=0,
            ),
            seed=7,
        ).freeze()
        with pytest.raises(RuntimeError, match="quantized"):
            predictor.set_inference_dtype("int8")

    def test_float_dtype_restores_fake_quantized_path(self):
        import copy

        from repro.models.timeppg import TimePPGConfig, TimePPGPredictor

        rng = np.random.default_rng(0)
        config = TimePPGConfig(
            name="TimePPG-Big",
            input_length=256,
            block_channels=(2, 2, 2),
            kernel_size=3,
            head_pool=2,
            head_hidden=0,
        )
        predictor = TimePPGPredictor(config, seed=7).freeze()
        windows = rng.standard_normal((6, 256))
        calibration = predictor.prepare_input(windows, None)
        predictor.quantized = quantize_network(
            copy.deepcopy(predictor.network), np.asarray(calibration, dtype=float)
        )
        reference = predictor.predict(windows)
        predictor.set_inference_dtype("int8")
        predictor.predict(windows)  # integer path runs
        predictor.set_inference_dtype("float64")
        np.testing.assert_array_equal(predictor.predict(windows), reference)
