"""Tests for the BLE link model."""

import pytest

from repro.hw.ble import (
    PAPER_WINDOW_TX_ENERGY_J,
    PAPER_WINDOW_TX_TIME_S,
    WINDOW_PAYLOAD_BYTES,
    BLELink,
    BLEPacketizer,
)


class TestPacketizer:
    def test_packet_count(self):
        packetizer = BLEPacketizer(mtu_bytes=244)
        assert packetizer.n_packets(0) == 0
        assert packetizer.n_packets(1) == 1
        assert packetizer.n_packets(244) == 1
        assert packetizer.n_packets(245) == 2
        assert packetizer.n_packets(WINDOW_PAYLOAD_BYTES) == 9

    def test_on_air_bytes_includes_overhead(self):
        packetizer = BLEPacketizer(mtu_bytes=100, packet_overhead_bytes=10)
        assert packetizer.on_air_bytes(250) == 250 + 3 * 10

    def test_validation(self):
        with pytest.raises(ValueError):
            BLEPacketizer(mtu_bytes=0)
        with pytest.raises(ValueError):
            BLEPacketizer(packet_overhead_bytes=-1)
        with pytest.raises(ValueError):
            BLEPacketizer().n_packets(-5)


class TestBLELink:
    def test_window_payload_constant(self):
        # 256 samples x 4 channels x 2 bytes.
        assert WINDOW_PAYLOAD_BYTES == 2048

    def test_calibrated_link_reproduces_paper_window_cost(self):
        link = BLELink.calibrated_to_paper()
        time_s, energy_j = link.window_transmission()
        assert time_s == pytest.approx(PAPER_WINDOW_TX_TIME_S, rel=0.01)
        assert energy_j == pytest.approx(PAPER_WINDOW_TX_ENERGY_J, rel=0.01)

    def test_energy_scales_with_payload(self):
        link = BLELink.calibrated_to_paper()
        small = link.transmission_energy_j(64 * 4 * 2)   # only the new samples
        full = link.transmission_energy_j(WINDOW_PAYLOAD_BYTES)
        assert small < full
        assert small > 0.0

    def test_time_monotone_in_payload(self):
        link = BLELink()
        times = [link.transmission_time_s(n) for n in (100, 1000, 5000)]
        assert times == sorted(times)

    def test_connection_toggling(self):
        link = BLELink(connected=True)
        assert link.connected
        link.disconnect()
        assert not link.connected
        link.reconnect()
        assert link.connected

    def test_validation(self):
        with pytest.raises(ValueError):
            BLELink(tx_power_w=0.0)
        with pytest.raises(ValueError):
            BLELink(throughput_bps=-1.0)
        with pytest.raises(ValueError):
            BLELink(connection_event_overhead_s=-0.1)
