"""Tests for the per-model deployment profiles."""

import pytest

from repro.hw.profiles import (
    PAPER_BLE_WINDOW_TX,
    PAPER_DEPLOYMENTS,
    ExecutionTarget,
    ModelDeployment,
    build_deployment,
    build_deployment_table,
    deployment_for,
)
from repro.models.base import PredictorInfo
from repro.models.registry import PAPER_MODEL_STATS


class TestPaperDeployments:
    def test_all_three_models_present(self):
        assert set(PAPER_DEPLOYMENTS) == {"AT", "TimePPG-Small", "TimePPG-Big"}

    def test_times_match_table3(self):
        for name, deployment in PAPER_DEPLOYMENTS.items():
            stats = PAPER_MODEL_STATS[name]
            assert deployment.watch_time_s == pytest.approx(stats.watch_time_ms * 1e-3)
            assert deployment.phone_time_s == pytest.approx(stats.phone_time_ms * 1e-3)
            assert deployment.mae_bpm == stats.mae_bpm

    def test_watch_active_energy_below_published_total(self):
        """Published energies include idle; the stored active part is smaller."""
        for name, deployment in PAPER_DEPLOYMENTS.items():
            assert deployment.watch_active_energy_j * 1e3 < PAPER_MODEL_STATS[name].watch_energy_mj

    def test_target_accessors(self):
        deployment = deployment_for("TimePPG-Small")
        assert deployment.time_s(ExecutionTarget.WATCH) == deployment.watch_time_s
        assert deployment.active_energy_j(ExecutionTarget.PHONE) == deployment.phone_active_energy_j

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            deployment_for("nope")

    def test_ble_constant(self):
        time_s, energy_j = PAPER_BLE_WINDOW_TX
        assert time_s == pytest.approx(10.24e-3)
        assert energy_j == pytest.approx(0.52e-3)


class TestBuildDeployment:
    def test_derived_deployment_for_new_model(self):
        info = PredictorInfo(name="SpectralTracker", n_parameters=0, macs_per_window=60_000)
        deployment = build_deployment(info, mae_bpm=7.5)
        assert deployment.name == "SpectralTracker"
        assert deployment.mae_bpm == 7.5
        # Cost must land between AT's and TimePPG-Small's (60k ops is between
        # 3k and 77.6k).
        assert PAPER_DEPLOYMENTS["AT"].watch_active_energy_j < deployment.watch_active_energy_j
        assert deployment.watch_active_energy_j < PAPER_DEPLOYMENTS["TimePPG-Big"].watch_active_energy_j

    def test_zero_ops_rejected(self):
        info = PredictorInfo(name="X", n_parameters=0, macs_per_window=0)
        with pytest.raises(ValueError):
            build_deployment(info, mae_bpm=5.0)

    def test_validation_of_deployment_fields(self):
        with pytest.raises(ValueError):
            ModelDeployment("X", 5.0, 100, 100, 0.0, 1e-3, 1e-3, 1e-3)


class TestBuildDeploymentTable:
    def test_paper_models_use_paper_numbers(self):
        infos = [
            PredictorInfo("AT", 0, 3000),
            PredictorInfo("TimePPG-Small", 5090, 77_630),
        ]
        table = build_deployment_table(infos, maes={"AT": 10.99, "TimePPG-Small": 5.60})
        assert table["AT"].watch_cycles == PAPER_MODEL_STATS["AT"].watch_cycles

    def test_measured_mae_overrides_paper_mae(self):
        infos = [PredictorInfo("AT", 0, 3000)]
        table = build_deployment_table(infos, maes={"AT": 12.5})
        assert table["AT"].mae_bpm == 12.5
        assert table["AT"].watch_time_s == PAPER_DEPLOYMENTS["AT"].watch_time_s

    def test_unknown_model_requires_mae(self):
        infos = [PredictorInfo("Custom", 10, 1000)]
        with pytest.raises(KeyError):
            build_deployment_table(infos, maes={})

    def test_non_paper_model_derived_from_devices(self):
        infos = [PredictorInfo("Custom", 10, 500_000)]
        table = build_deployment_table(infos, maes={"Custom": 6.0})
        assert table["Custom"].operations == 500_000
        assert table["Custom"].watch_active_energy_j > 0
