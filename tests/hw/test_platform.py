"""Tests for the watch + phone + BLE co-model."""

import pytest

from repro.hw.ble import BLELink
from repro.hw.platform import (
    PREDICTION_PERIOD_S,
    CostTableError,
    CostTableRegistry,
    WearableSystem,
)
from repro.hw.profiles import PAPER_DEPLOYMENTS, ExecutionTarget
from repro.models.registry import PAPER_MODEL_STATS


@pytest.fixture()
def system() -> WearableSystem:
    return WearableSystem()


class TestLocalPrediction:
    def test_prediction_period_is_window_stride(self):
        assert PREDICTION_PERIOD_S == pytest.approx(2.0)

    def test_local_cost_reproduces_table3_energy(self, system):
        """Local per-prediction watch energy (compute + idle) matches Table III."""
        for name, deployment in PAPER_DEPLOYMENTS.items():
            cost = system.local_prediction_cost(deployment)
            expected_mj = PAPER_MODEL_STATS[name].watch_energy_mj
            assert cost.watch_total_j * 1e3 == pytest.approx(expected_mj, rel=0.05), name
            assert cost.phone_compute_j == 0.0
            assert cost.watch_radio_j == 0.0
            assert not cost.offloaded

    def test_local_latency_is_execution_time(self, system):
        deployment = PAPER_DEPLOYMENTS["TimePPG-Big"]
        cost = system.local_prediction_cost(deployment)
        assert cost.latency_s == pytest.approx(deployment.watch_time_s)


class TestOffloadedPrediction:
    def test_offload_energy_is_ble_plus_idle(self, system):
        deployment = PAPER_DEPLOYMENTS["TimePPG-Big"]
        cost = system.offloaded_prediction_cost(deployment)
        assert cost.offloaded
        assert cost.watch_compute_j == 0.0
        assert cost.watch_radio_j == pytest.approx(0.52e-3, rel=0.02)
        assert cost.phone_compute_j == pytest.approx(25.60e-3, rel=0.01)
        # Offloading the big model costs the watch far less than running it.
        local = system.local_prediction_cost(deployment)
        assert cost.watch_total_j < local.watch_total_j / 20

    def test_offload_latency_includes_transfer_and_remote_execution(self, system):
        deployment = PAPER_DEPLOYMENTS["TimePPG-Small"]
        cost = system.offloaded_prediction_cost(deployment)
        assert cost.latency_s == pytest.approx(
            system.ble.transmission_time_s(system.offload_payload_bytes) + deployment.phone_time_s
        )

    def test_offloading_at_is_suboptimal_for_the_watch(self, system):
        """Paper Sec. IV-A: offloading AT costs the watch more than running it."""
        deployment = PAPER_DEPLOYMENTS["AT"]
        local = system.local_prediction_cost(deployment)
        offloaded = system.offloaded_prediction_cost(deployment)
        assert offloaded.watch_total_j > local.watch_total_j

    def test_offloading_small_is_marginally_convenient(self, system):
        """Paper Sec. IV-A: for TimePPG-Small, streaming (0.519 mJ) is slightly
        cheaper for the watch than local execution (0.735 mJ)."""
        deployment = PAPER_DEPLOYMENTS["TimePPG-Small"]
        local = system.local_prediction_cost(deployment)
        offloaded = system.offloaded_prediction_cost(deployment)
        assert offloaded.watch_total_j < local.watch_total_j
        assert offloaded.watch_total_j > 0.6 * local.watch_total_j

    def test_offload_requires_connection(self):
        system = WearableSystem(ble=BLELink.calibrated_to_paper(connected=False))
        with pytest.raises(RuntimeError):
            system.offloaded_prediction_cost(PAPER_DEPLOYMENTS["TimePPG-Big"])
        assert not system.connected

    def test_system_total_includes_phone(self, system):
        deployment = PAPER_DEPLOYMENTS["TimePPG-Big"]
        cost = system.offloaded_prediction_cost(deployment)
        assert cost.system_total_j == pytest.approx(cost.watch_total_j + cost.phone_compute_j)


class TestConfigurationKnobs:
    def test_incremental_streaming_reduces_radio_energy(self):
        full = WearableSystem()
        incremental = WearableSystem(offload_payload_bytes=64 * 4 * 2)
        deployment = PAPER_DEPLOYMENTS["TimePPG-Big"]
        assert (
            incremental.offloaded_prediction_cost(deployment).watch_radio_j
            < full.offloaded_prediction_cost(deployment).watch_radio_j
        )

    def test_difficulty_detector_overhead_added_to_every_prediction(self):
        overhead = 50e-6
        system = WearableSystem(difficulty_detector_energy_j=overhead)
        baseline = WearableSystem()
        deployment = PAPER_DEPLOYMENTS["AT"]
        delta = (
            system.local_prediction_cost(deployment).watch_total_j
            - baseline.local_prediction_cost(deployment).watch_total_j
        )
        assert delta == pytest.approx(overhead)

    def test_prediction_cost_dispatch(self, system):
        deployment = PAPER_DEPLOYMENTS["AT"]
        assert not system.prediction_cost(deployment, ExecutionTarget.WATCH).offloaded
        assert system.prediction_cost(deployment, ExecutionTarget.PHONE).offloaded

    def test_average_power(self, system):
        assert system.average_watch_power_w(2e-3) == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            WearableSystem(prediction_period_s=0.0)
        with pytest.raises(ValueError):
            WearableSystem(offload_payload_bytes=0)
        with pytest.raises(ValueError):
            WearableSystem(difficulty_detector_energy_j=-1.0)


class TestCachedPredictionCost:
    def test_cache_returns_same_object(self, system):
        deployment = PAPER_DEPLOYMENTS["TimePPG-Small"]
        first = system.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        second = system.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        assert first is second
        assert first == system.prediction_cost(deployment, ExecutionTarget.WATCH)

    def test_cached_matches_uncached_for_both_targets(self, system):
        for name in PAPER_DEPLOYMENTS:
            deployment = PAPER_DEPLOYMENTS[name]
            for target in (ExecutionTarget.WATCH, ExecutionTarget.PHONE):
                assert system.cached_prediction_cost(deployment, target) == (
                    system.prediction_cost(deployment, target)
                )

    def test_cache_invalidates_when_parameters_change(self, system):
        deployment = PAPER_DEPLOYMENTS["AT"]
        before = system.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        system.prediction_period_s = 4.0
        after = system.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        assert after.watch_idle_j > before.watch_idle_j

    def test_explicit_invalidation_clears_entries(self, system):
        deployment = PAPER_DEPLOYMENTS["AT"]
        first = system.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        system.invalidate_cost_cache()
        second = system.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        assert first is not second
        assert first == second

    def test_cached_phone_cost_ignores_connection_state(self, system):
        """The batched planner guarantees phone windows were planned while
        connected, so the cache lookup itself must not consult the link."""
        deployment = PAPER_DEPLOYMENTS["TimePPG-Big"]
        expected = system.prediction_cost(deployment, ExecutionTarget.PHONE)
        system.ble.disconnect()
        try:
            with pytest.raises(RuntimeError):
                system.prediction_cost(deployment, ExecutionTarget.PHONE)
            assert system.cached_prediction_cost(deployment, ExecutionTarget.PHONE) == expected
        finally:
            system.ble.reconnect()


class TestCostTableRegistry:
    def test_shared_across_system_instances(self):
        """Identical hardware revisions are profiled once for the whole fleet."""
        registry = CostTableRegistry()
        fleet = [WearableSystem(cost_registry=registry) for _ in range(5)]
        deployment = PAPER_DEPLOYMENTS["TimePPG-Small"]
        costs = [
            system.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
            for system in fleet
        ]
        assert all(cost is costs[0] for cost in costs)
        assert registry.n_revisions == 1
        assert registry.n_entries == 1

    def test_heterogeneous_revisions_get_separate_tables(self):
        registry = CostTableRegistry()
        stock = WearableSystem(cost_registry=registry)
        modified = WearableSystem(cost_registry=registry, prediction_period_s=4.0)
        deployment = PAPER_DEPLOYMENTS["AT"]
        a = stock.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        b = modified.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        assert registry.n_revisions == 2
        assert b.watch_idle_j > a.watch_idle_j

    def test_profile_system_fills_every_pair(self):
        registry = CostTableRegistry()
        system = WearableSystem(cost_registry=registry)
        deployments = list(PAPER_DEPLOYMENTS.values())
        revision = registry.profile_system(system, deployments)
        assert revision == system.hardware_revision()
        assert registry.n_entries == 2 * len(deployments)

    def test_json_roundtrip_is_bit_exact(self):
        registry = CostTableRegistry()
        system = WearableSystem(cost_registry=registry)
        registry.profile_system(system, list(PAPER_DEPLOYMENTS.values()))
        loaded = CostTableRegistry.from_json(registry.to_json())
        assert loaded.revisions() == registry.revisions()
        assert loaded.n_entries == registry.n_entries
        worker = WearableSystem(cost_registry=loaded)
        for deployment in PAPER_DEPLOYMENTS.values():
            for target in (ExecutionTarget.WATCH, ExecutionTarget.PHONE):
                assert worker.cached_prediction_cost(deployment, target) == (
                    system.cached_prediction_cost(deployment, target)
                )
        # The loaded table served every lookup: nothing was re-profiled.
        assert loaded.n_entries == registry.n_entries

    def test_merge_keeps_existing_entries(self):
        registry = CostTableRegistry()
        system = WearableSystem(cost_registry=registry)
        deployment = PAPER_DEPLOYMENTS["AT"]
        mine = system.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        other = CostTableRegistry.from_json(registry.to_json())
        registry.merge(other)
        assert system.cached_prediction_cost(deployment, ExecutionTarget.WATCH) is mine

    def test_clear_and_drop(self):
        registry = CostTableRegistry()
        system = WearableSystem(cost_registry=registry)
        deployment = PAPER_DEPLOYMENTS["AT"]
        system.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        registry.drop(system.hardware_revision())
        assert registry.n_revisions == 0
        registry.drop(system.hardware_revision())  # no-op when absent
        system.cached_prediction_cost(deployment, ExecutionTarget.WATCH)
        registry.clear()
        assert registry.n_entries == 0

    def test_default_systems_share_the_module_registry(self):
        from repro.hw.platform import SHARED_COST_REGISTRY

        assert WearableSystem().cost_registry is SHARED_COST_REGISTRY
        assert WearableSystem().cost_registry is WearableSystem().cost_registry


class TestCostTableErrorPaths:
    """Corrupt payloads and strict lookups must fail loudly, never
    silently re-profile (a worker handed a broken table would otherwise
    mask the deployment bug by recomputing everything)."""

    def _profiled_registry(self) -> tuple[CostTableRegistry, WearableSystem]:
        registry = CostTableRegistry()
        system = WearableSystem(cost_registry=registry)
        registry.profile_system(system, list(PAPER_DEPLOYMENTS.values()))
        return registry, system

    def test_corrupt_json_raises(self):
        with pytest.raises(CostTableError, match="corrupt cost-table JSON"):
            CostTableRegistry.from_json("{not json at all")

    def test_wrong_top_level_type_raises(self):
        with pytest.raises(CostTableError, match="expected a list"):
            CostTableRegistry.from_json('{"revision": []}')

    def test_missing_block_keys_raise(self):
        with pytest.raises(CostTableError, match="revision block 0"):
            CostTableRegistry.from_json('[{"entries": []}]')

    def test_malformed_entry_raises(self):
        registry, _ = self._profiled_registry()
        import json

        payload = json.loads(registry.to_json())
        del payload[0]["entries"][0]["deployment"]["name"]
        with pytest.raises(CostTableError, match="corrupt cost-table entry"):
            CostTableRegistry.from_json(json.dumps(payload))

    def test_unknown_execution_target_raises(self):
        registry, _ = self._profiled_registry()
        import json

        payload = json.loads(registry.to_json())
        payload[0]["entries"][0]["target"] = "toaster"
        with pytest.raises(CostTableError, match="corrupt cost-table entry"):
            CostTableRegistry.from_json(json.dumps(payload))

    def test_corrupt_file_raises_with_path(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text("]] definitely broken [[")
        with pytest.raises(CostTableError, match="corrupt cost-table JSON"):
            CostTableRegistry.from_json_file(path)

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(CostTableError, match="cannot read cost-table file"):
            CostTableRegistry.from_json_file(tmp_path / "missing.json")

    def test_file_roundtrip(self, tmp_path):
        registry, system = self._profiled_registry()
        path = tmp_path / "costs.json"
        registry.to_json_file(path)
        loaded = CostTableRegistry.from_json_file(path)
        assert loaded.n_entries == registry.n_entries
        deployment = PAPER_DEPLOYMENTS["TimePPG-Small"]
        assert loaded.cost_for(system, deployment, ExecutionTarget.WATCH) == (
            registry.cost_for(system, deployment, ExecutionTarget.WATCH)
        )

    def test_strict_lookup_unknown_revision_raises(self):
        registry, _ = self._profiled_registry()
        stranger = WearableSystem(
            cost_registry=CostTableRegistry(), prediction_period_s=3.0
        )
        with pytest.raises(CostTableError, match="no cost table for hardware revision"):
            registry.cost_for(
                stranger, PAPER_DEPLOYMENTS["AT"], ExecutionTarget.WATCH
            )

    def test_strict_lookup_partial_table_raises(self):
        registry = CostTableRegistry()
        system = WearableSystem(cost_registry=registry)
        deployment = PAPER_DEPLOYMENTS["AT"]
        registry.lookup(system, deployment, ExecutionTarget.WATCH)
        with pytest.raises(CostTableError, match="partial"):
            registry.cost_for(system, deployment, ExecutionTarget.PHONE)
        # ... and the failed strict lookup did not silently profile.
        assert registry.n_entries == 1

    def test_strict_lookup_hits_do_not_grow_the_table(self):
        registry, system = self._profiled_registry()
        before = registry.n_entries
        for deployment in PAPER_DEPLOYMENTS.values():
            for target in (ExecutionTarget.WATCH, ExecutionTarget.PHONE):
                assert registry.cost_for(system, deployment, target) is (
                    registry.lookup(system, deployment, target)
                )
        assert registry.n_entries == before

    def test_non_list_entries_raise(self):
        with pytest.raises(CostTableError, match="'entries' must be a list"):
            CostTableRegistry.from_json('[{"revision": [], "entries": 42}]')

    def test_strict_mode_routes_lookup_through_cost_for(self):
        """Fleet workers flip strict on the loaded registry: a miss then
        raises through the normal cached_prediction_cost path instead of
        silently re-profiling."""
        registry = CostTableRegistry()
        registry.strict = True
        system = WearableSystem(cost_registry=registry)
        with pytest.raises(CostTableError, match="no cost table"):
            system.cached_prediction_cost(
                PAPER_DEPLOYMENTS["AT"], ExecutionTarget.WATCH
            )
        assert registry.n_entries == 0
        registry.strict = False
        registry.profile_system(system, [PAPER_DEPLOYMENTS["AT"]])
        registry.strict = True
        assert system.cached_prediction_cost(
            PAPER_DEPLOYMENTS["AT"], ExecutionTarget.WATCH
        ) == registry.cost_for(system, PAPER_DEPLOYMENTS["AT"], ExecutionTarget.WATCH)


class TestConcurrentRegistryAccess:
    """The registry is shared mutable state across scheduler/worker threads.

    Regression for the unguarded-table era: concurrent fills while another
    thread serialized raised ``RuntimeError: dictionary changed size during
    iteration`` (or shipped half-filled tables).  Every fill/read now goes
    through the registry's internal lock.
    """

    def test_concurrent_fills_and_serialization(self):
        import threading

        registry = CostTableRegistry()
        # Distinct hardware revisions so fills keep inserting fresh keys.
        systems = [
            WearableSystem(
                cost_registry=registry, prediction_period_s=2.0 + 0.001 * i
            )
            for i in range(6)
        ]
        deployments = list(PAPER_DEPLOYMENTS.values())
        barrier = threading.Barrier(len(systems) + 2)
        errors: list[BaseException] = []

        def fill(system: WearableSystem) -> None:
            try:
                barrier.wait()
                for _ in range(40):
                    registry.profile_system(system, deployments)
                    # Drop the revision so the next round re-inserts keys
                    # (real churn, not idempotent cache hits).
                    system.invalidate_cost_cache()
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        def serialize() -> None:
            try:
                barrier.wait()
                for _ in range(120):
                    CostTableRegistry.from_json(registry.to_json())
                    registry.n_entries
                    registry.revisions()
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=fill, args=(s,)) for s in systems]
        threads += [threading.Thread(target=serialize) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        # After the dust settles a full profile leaves a complete table.
        for system in systems:
            registry.profile_system(system, deployments)
        assert registry.n_revisions == len(systems)
        assert registry.n_entries == len(systems) * len(deployments) * 2

    def test_registry_survives_pickle_and_deepcopy(self):
        import copy
        import pickle

        registry = CostTableRegistry()
        system = WearableSystem(cost_registry=registry)
        registry.profile_system(system, list(PAPER_DEPLOYMENTS.values()))

        clone = copy.deepcopy(registry)
        assert clone.n_entries == registry.n_entries
        assert clone._lock is not registry._lock

        loaded = pickle.loads(pickle.dumps(registry))
        assert loaded.n_entries == registry.n_entries
        # The copies stay independently usable (fresh locks).
        loaded.clear()
        assert loaded.n_entries == 0
        assert registry.n_entries > 0
