"""Tests for the energy-trace accounting."""

import pytest

from repro.core.decision_engine import Constraint
from repro.core.runtime import CHRISRuntime
from repro.hw.platform import WearableSystem
from repro.hw.profiles import PAPER_DEPLOYMENTS, ExecutionTarget
from repro.hw.trace import EnergyBreakdown, EnergyTrace


@pytest.fixture()
def system() -> WearableSystem:
    return WearableSystem()


class TestEnergyBreakdown:
    def test_totals_and_fractions(self):
        breakdown = EnergyBreakdown(
            watch_compute_j=1.0, watch_radio_j=2.0, watch_idle_j=1.0, phone_compute_j=4.0
        )
        assert breakdown.watch_total_j == pytest.approx(4.0)
        assert breakdown.system_total_j == pytest.approx(8.0)
        assert breakdown.fraction("radio") == pytest.approx(0.5)
        assert breakdown.fraction("compute") == pytest.approx(0.25)

    def test_unknown_component(self):
        with pytest.raises(KeyError):
            EnergyBreakdown().fraction("gpu")

    def test_empty_breakdown_fraction_is_zero(self):
        assert EnergyBreakdown().fraction("idle") == 0.0


class TestEnergyTrace:
    def test_record_and_aggregate_local_predictions(self, system):
        trace = EnergyTrace()
        cost = system.local_prediction_cost(PAPER_DEPLOYMENTS["AT"])
        for _ in range(10):
            trace.record(cost)
        assert trace.n_predictions == 10
        assert trace.duration_s == pytest.approx(20.0)
        breakdown = trace.breakdown()
        assert breakdown.watch_radio_j == 0.0
        assert breakdown.watch_total_j == pytest.approx(10 * cost.watch_total_j)
        # AT-local: the idle energy dominates the per-prediction budget.
        assert breakdown.fraction("idle") > 0.5

    def test_offloaded_predictions_show_radio_share(self, system):
        trace = EnergyTrace()
        cost = system.offloaded_prediction_cost(PAPER_DEPLOYMENTS["TimePPG-Big"])
        trace.extend([cost] * 5)
        breakdown = trace.breakdown()
        assert breakdown.fraction("radio") > 0.5
        assert breakdown.phone_compute_j == pytest.approx(5 * 25.60e-3, rel=0.01)

    def test_average_power_matches_table3_interpretation(self, system):
        """AT-local at one prediction per 2 s -> ~0.117 mW average power."""
        trace = EnergyTrace()
        trace.extend([system.local_prediction_cost(PAPER_DEPLOYMENTS["AT"])] * 20)
        assert trace.average_watch_power_w() == pytest.approx(0.234e-3 / 2.0, rel=0.05)

    def test_duty_cycle_reflects_model_latency(self, system):
        big = EnergyTrace()
        big.extend([system.local_prediction_cost(PAPER_DEPLOYMENTS["TimePPG-Big"])] * 3)
        at = EnergyTrace()
        at.extend([system.local_prediction_cost(PAPER_DEPLOYMENTS["AT"])] * 3)
        assert big.duty_cycle() > 0.5
        assert at.duty_cycle() < 0.01

    def test_battery_lifetime_ordering(self, system):
        cheap = EnergyTrace()
        cheap.extend([system.local_prediction_cost(PAPER_DEPLOYMENTS["AT"])] * 4)
        expensive = EnergyTrace()
        expensive.extend([system.local_prediction_cost(PAPER_DEPLOYMENTS["TimePPG-Big"])] * 4)
        assert cheap.battery_lifetime_hours() > 50 * expensive.battery_lifetime_hours()

    def test_empty_trace_errors(self):
        trace = EnergyTrace()
        with pytest.raises(ValueError):
            trace.average_watch_power_w()
        with pytest.raises(ValueError):
            trace.duty_cycle()
        assert trace.summary() == "empty trace"
        with pytest.raises(ValueError):
            EnergyTrace(prediction_period_s=0.0)

    def test_from_run_result(self, calibrated_experiment, small_dataset):
        runtime = CHRISRuntime(
            zoo=calibrated_experiment.zoo,
            engine=calibrated_experiment.engine,
            system=calibrated_experiment.system,
        )
        result = runtime.run(
            small_dataset.subjects[1], Constraint.max_mae(6.0), use_oracle_difficulty=True
        )
        trace = EnergyTrace.from_run_result(result)
        assert trace.n_predictions == result.n_windows
        assert trace.breakdown().watch_total_j == pytest.approx(result.total_watch_energy_j)
        summary = trace.summary()
        assert "predictions" in summary
        assert "battery life" in summary
