"""Tests for the battery/lifetime model."""

import pytest

from repro.hw.battery import Battery, estimate_lifetime_hours


class TestBattery:
    def test_hwatch_capacity(self):
        battery = Battery()
        # 370 mAh at 3.7 V = 4.93 kJ.
        assert battery.capacity_j == pytest.approx(370e-3 * 3600 * 3.7, rel=1e-6)
        assert battery.usable_energy_j < battery.capacity_j

    def test_lifetime_inverse_in_power(self):
        battery = Battery()
        assert battery.lifetime_hours(0.001) == pytest.approx(2 * battery.lifetime_hours(0.002))

    def test_predictions_per_charge(self):
        battery = Battery(capacity_mah=100, voltage_v=1.0, usable_fraction=1.0)
        # 100 mAh @ 1 V = 360 J; 1 mJ per prediction -> ~360k predictions
        # (floor division, so floating-point rounding may drop one).
        assert battery.predictions_per_charge(1e-3) in (359_999, 360_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0)
        with pytest.raises(ValueError):
            Battery(usable_fraction=0.0)
        with pytest.raises(ValueError):
            Battery().lifetime_hours(0.0)
        with pytest.raises(ValueError):
            Battery().predictions_per_charge(0.0)


class TestLifetimeEstimate:
    def test_lower_energy_longer_life(self):
        high = estimate_lifetime_hours(0.735e-3)  # TimePPG-Small on the watch
        low = estimate_lifetime_hours(0.290e-3)   # a CHRIS hybrid configuration
        assert low > 2 * high

    def test_continuous_tracking_order_of_magnitude(self):
        # At ~0.36 mJ / 2 s (the CHRIS selection), the 370 mAh battery should
        # last on the order of weeks, not minutes.
        hours = estimate_lifetime_hours(0.36e-3)
        assert 1000 < hours < 20000

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            estimate_lifetime_hours(1e-3, prediction_period_s=0.0)
