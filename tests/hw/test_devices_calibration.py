"""Tests that the MCU/phone models reproduce the paper's Table III."""

import pytest

from repro.hw.mcu import STM32WB55, make_smartwatch_mcu
from repro.hw.mobile import RaspberryPi3, make_phone_processor
from repro.models.registry import PAPER_MODEL_STATS


class TestSTM32WB55:
    def test_nominal_parameters(self):
        mcu = make_smartwatch_mcu()
        assert mcu.frequency_hz == pytest.approx(64e6)
        assert mcu.name == "STM32WB55"
        assert mcu.power.supply_efficiency == pytest.approx(0.90)

    def test_cycle_model_reproduces_table3_cycles(self):
        mcu = STM32WB55()
        for stats in PAPER_MODEL_STATS.values():
            predicted = mcu.latency_model.cycles_for(stats.operations)
            assert predicted == pytest.approx(stats.watch_cycles, rel=0.25), stats.name

    def test_execution_time_from_published_cycles(self):
        mcu = STM32WB55()
        for stats in PAPER_MODEL_STATS.values():
            result = mcu.execute_cycles(stats.watch_cycles)
            assert result.time_ms == pytest.approx(stats.watch_time_ms, rel=0.01), stats.name

    def test_active_plus_idle_energy_reproduces_table3(self):
        """Published per-prediction energies = active energy + idle for the
        rest of the 2-second prediction period."""
        mcu = STM32WB55()
        period = 2.0
        for stats in PAPER_MODEL_STATS.values():
            exec_result = mcu.execute_cycles(stats.watch_cycles)
            idle = mcu.idle_energy(max(0.0, period - exec_result.time_s))
            total_mj = (exec_result.energy_j + idle) * 1e3
            assert total_mj == pytest.approx(stats.watch_energy_mj, rel=0.05), stats.name

    def test_idle_power_is_orders_of_magnitude_below_active(self):
        mcu = STM32WB55()
        assert mcu.power.idle_w < mcu.power.active_w / 100


class TestRaspberryPi3:
    def test_nominal_parameters(self):
        phone = make_phone_processor()
        assert phone.frequency_hz == pytest.approx(600e6)
        assert phone.power.active_w == pytest.approx(1.60)

    def test_latency_model_reproduces_table3_times(self):
        phone = RaspberryPi3()
        for stats in PAPER_MODEL_STATS.values():
            result = phone.execute_operations(stats.operations)
            assert result.time_ms == pytest.approx(stats.phone_time_ms, rel=0.25), stats.name

    def test_energy_reproduces_table3(self):
        phone = RaspberryPi3()
        for stats in PAPER_MODEL_STATS.values():
            # Using the published execution time directly, energy = P * t.
            energy_mj = phone.power.active_w * stats.phone_time_ms
            assert energy_mj == pytest.approx(stats.phone_energy_mj, rel=0.05), stats.name

    def test_phone_is_faster_but_hungrier_than_watch(self):
        """The paper's observation: the phone runs the big model ~100x faster
        but at ~60x the power."""
        mcu, phone = STM32WB55(), RaspberryPi3()
        big = PAPER_MODEL_STATS["TimePPG-Big"]
        watch_time = mcu.execute_cycles(big.watch_cycles).time_s
        phone_time = phone.execute_operations(big.operations).time_s
        assert watch_time > 50 * phone_time
        assert phone.power.active_w > 30 * mcu.power.active_w
