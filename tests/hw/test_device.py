"""Tests for the generic device and latency models."""

import numpy as np
import pytest

from repro.hw.device import CalibrationPoint, ComputeDevice, ExecutionResult, PowerLawLatencyModel
from repro.hw.power import PowerProfile


class TestPowerProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerProfile(active_w=0.0, idle_w=0.0)
        with pytest.raises(ValueError):
            PowerProfile(active_w=1.0, idle_w=-1.0)
        with pytest.raises(ValueError):
            PowerProfile(active_w=1.0, idle_w=0.0, supply_efficiency=1.5)

    def test_battery_energy_accounts_for_converter_losses(self):
        profile = PowerProfile(active_w=1.0, idle_w=0.0, supply_efficiency=0.9)
        assert profile.battery_energy_j(0.9) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            profile.battery_energy_j(-1.0)


class TestPowerLawLatencyModel:
    def test_single_point_is_proportional(self):
        model = PowerLawLatencyModel([CalibrationPoint(1000, 5000)])
        assert model.exponent == pytest.approx(1.0)
        assert model.cycles_for(2000) == pytest.approx(10000, rel=1e-6)

    def test_exact_fit_through_two_points_on_a_power_law(self):
        # cycles = 10 * ops^0.8
        points = [
            CalibrationPoint(10_000, int(10 * 10_000 ** 0.8)),
            CalibrationPoint(1_000_000, int(10 * 1_000_000 ** 0.8)),
        ]
        model = PowerLawLatencyModel(points)
        assert model.exponent == pytest.approx(0.8, abs=0.01)
        assert model.cycles_for(100_000) == pytest.approx(10 * 100_000 ** 0.8, rel=0.02)

    def test_monotonically_increasing(self):
        model = PowerLawLatencyModel(
            [CalibrationPoint(3_000, 100_000), CalibrationPoint(12_270_000, 103_160_000)]
        )
        ops = np.logspace(3, 7, 20).astype(int)
        cycles = [model.cycles_for(int(o)) for o in ops]
        assert all(b > a for a, b in zip(cycles, cycles[1:]))

    def test_relative_error_reported(self):
        points = [
            CalibrationPoint(3_000, 100_000),
            CalibrationPoint(77_630, 1_365_000),
            CalibrationPoint(12_270_000, 103_160_000),
        ]
        model = PowerLawLatencyModel(points)
        assert model.relative_error() < 0.25

    def test_fixed_exponent(self):
        model = PowerLawLatencyModel([CalibrationPoint(100, 1000)], exponent=1.0)
        assert model.cycles_for(200) == 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerLawLatencyModel([])
        with pytest.raises(ValueError):
            CalibrationPoint(0, 100)
        with pytest.raises(ValueError):
            CalibrationPoint(100, 0)
        model = PowerLawLatencyModel([CalibrationPoint(100, 1000)])
        with pytest.raises(ValueError):
            model.cycles_for(0)


class TestComputeDevice:
    def _device(self) -> ComputeDevice:
        return ComputeDevice(
            name="test",
            frequency_hz=100e6,
            power=PowerProfile(active_w=0.02, idle_w=0.001),
            latency_model=PowerLawLatencyModel([CalibrationPoint(1000, 10_000)]),
        )

    def test_execute_cycles(self):
        result = self._device().execute_cycles(1_000_000)
        assert isinstance(result, ExecutionResult)
        assert result.time_s == pytest.approx(0.01)
        assert result.energy_j == pytest.approx(0.02 * 0.01)
        assert result.time_ms == pytest.approx(10.0)
        assert result.energy_mj == pytest.approx(0.2)

    def test_execute_operations_uses_latency_model(self):
        result = self._device().execute_operations(1000)
        assert result.cycles == 10_000
        assert result.time_s == pytest.approx(1e-4)

    def test_idle_energy(self):
        assert self._device().idle_energy(2.0) == pytest.approx(0.002)
        with pytest.raises(ValueError):
            self._device().idle_energy(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeDevice("x", 0.0, PowerProfile(1.0, 0.0),
                          PowerLawLatencyModel([CalibrationPoint(1, 1)]))
        with pytest.raises(ValueError):
            self._device().execute_cycles(0)
