"""Tests for the experiment assembly helpers."""

import numpy as np
import pytest

from repro.core.decision_engine import Constraint
from repro.eval.experiment import (
    BaselinePoint,
    CalibratedExperiment,
    baseline_points,
    build_calibrated_zoo,
    make_profiling_data,
)
from repro.hw.profiles import ExecutionTarget
from repro.models.registry import PAPER_MODEL_STATS


class TestBuildCalibratedZoo:
    def test_zoo_pairs_predictors_with_paper_deployments(self):
        zoo = build_calibrated_zoo()
        for entry in zoo:
            assert entry.deployment.mae_bpm == PAPER_MODEL_STATS[entry.name].mae_bpm
            assert entry.predictor.info.name == entry.name


class TestBaselinePoints:
    def test_six_baselines_for_three_models(self, calibrated_experiment):
        baselines = calibrated_experiment.baselines
        assert len(baselines) == 6
        labels = {b.label() for b in baselines}
        assert "AT@watch" in labels
        assert "TimePPG-Big@phone" in labels

    def test_watch_baselines_match_table3(self):
        zoo = build_calibrated_zoo()
        points = baseline_points(zoo)
        for point in points:
            if point.target is ExecutionTarget.WATCH:
                expected = PAPER_MODEL_STATS[point.model_name].watch_energy_mj
                assert point.watch_energy_mj == pytest.approx(expected, rel=0.05)

    def test_offloaded_baselines_share_the_ble_cost(self):
        zoo = build_calibrated_zoo()
        points = [p for p in baseline_points(zoo) if p.target is ExecutionTarget.PHONE]
        energies = {p.watch_energy_mj for p in points}
        # The watch-side cost of offloading does not depend on the model.
        assert max(energies) - min(energies) < 1e-9

    def test_lookup_unknown_baseline(self, calibrated_experiment):
        with pytest.raises(KeyError):
            calibrated_experiment.baseline("nope", ExecutionTarget.WATCH)


class TestMakeProfilingData:
    def test_rf_and_oracle_paths(self):
        zoo = build_calibrated_zoo()
        data_rf, dataset, classifier = make_profiling_data(
            zoo, n_subjects=4, activity_duration_s=30.0, seed=3
        )
        assert classifier is not None
        assert data_rf.n_windows > 0
        assert len(dataset) == 4
        data_oracle, _, no_classifier = make_profiling_data(
            zoo, n_subjects=2, activity_duration_s=30.0, seed=3, use_oracle_difficulty=True
        )
        assert no_classifier is None
        assert np.array_equal(data_oracle.predicted_difficulty, data_oracle.true_difficulty)

    def test_difficulty_detector_is_mostly_right(self):
        zoo = build_calibrated_zoo()
        data, _, _ = make_profiling_data(zoo, n_subjects=4, activity_duration_s=30.0, seed=5)
        agreement = np.mean(data.predicted_difficulty == data.true_difficulty)
        assert agreement > 0.6


class TestCalibratedExperiment:
    def test_build_produces_full_design_space(self, calibrated_experiment):
        assert len(calibrated_experiment.table) == 60
        assert len(calibrated_experiment.baselines) == 6

    def test_selected_configuration_beats_small_local_baseline(self, oracle_experiment):
        """The core CHRIS result: same accuracy as TimePPG-Small at a lower
        smartwatch energy."""
        selected = oracle_experiment.select(Constraint.max_mae(5.60))
        small_local = oracle_experiment.baseline("TimePPG-Small", ExecutionTarget.WATCH)
        assert selected.mae_bpm <= 5.60
        reduction = oracle_experiment.energy_reduction_vs(selected, small_local)
        assert reduction > 1.4

    def test_selection_respects_disconnection(self, oracle_experiment):
        connected = oracle_experiment.select(Constraint.max_mae(5.60), connected=True)
        disconnected = oracle_experiment.select(Constraint.max_mae(5.60), connected=False)
        assert disconnected.is_local
        assert disconnected.watch_energy_j >= connected.watch_energy_j

    def test_model_maes_match_calibration_targets(self, oracle_experiment):
        data = oracle_experiment.data
        assert data.model_mae("AT") == pytest.approx(10.99, rel=0.12)
        assert data.model_mae("TimePPG-Small") == pytest.approx(5.60, rel=0.12)
        assert data.model_mae("TimePPG-Big") == pytest.approx(4.87, rel=0.12)
