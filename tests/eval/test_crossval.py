"""Tests for the end-to-end cross-validation protocol (trained-model path)."""

import pytest

from repro.data import SyntheticDaliaGenerator, SyntheticDatasetConfig
from repro.eval.crossval import run_cross_validation
from repro.models import AdaptiveThresholdPredictor, SpectralHRPredictor
from repro.models.timeppg import TimePPGConfig


@pytest.fixture(scope="module")
def tiny_corpus():
    """A 6-subject corpus small enough to train on inside the test budget."""
    config = SyntheticDatasetConfig(n_subjects=6, activity_duration_s=25.0, seed=21)
    return SyntheticDaliaGenerator(config).generate_windowed()


TINY_TCN = TimePPGConfig(
    name="TimePPG-Tiny",
    block_channels=(4, 4, 6),
    kernel_size=3,
    head_pool=8,
    head_hidden=16,
)


class TestRunCrossValidation:
    def test_classical_models_evaluated_on_every_fold(self, tiny_corpus):
        result = run_cross_validation(
            tiny_corpus,
            classical_models={"AT": AdaptiveThresholdPredictor(),
                              "Spectral": SpectralHRPredictor()},
            fold_size=3,
            max_folds=4,
        )
        assert len(result.folds) == 4
        assert set(result.model_names) == {"AT", "Spectral"}
        for name in result.model_names:
            assert result.mean_mae(name) > 0

    def test_spectral_beats_at_on_synthetic_data(self, tiny_corpus):
        """The frequency-domain baseline handles motion artifacts better than
        naive peak tracking, mirroring the paper's classical-vs-better-model gap."""
        result = run_cross_validation(
            tiny_corpus,
            classical_models={"AT": AdaptiveThresholdPredictor(),
                              "Spectral": SpectralHRPredictor()},
            fold_size=3,
            max_folds=3,
        )
        assert result.mean_mae("Spectral") < result.mean_mae("AT")

    def test_trained_tcn_is_learned_per_fold(self, tiny_corpus):
        result = run_cross_validation(
            tiny_corpus,
            classical_models={"AT": AdaptiveThresholdPredictor()},
            timeppg_configs={"TimePPG-Tiny": TINY_TCN},
            fold_size=3,
            epochs=3,
            max_folds=1,
            seed=0,
        )
        fold = result.folds[0]
        assert "TimePPG-Tiny" in fold.mae_per_model
        # A briefly trained TCN will not be great, but it must produce a
        # finite, plausible MAE on the held-out subject.
        assert 0.0 < fold.mae_per_model["TimePPG-Tiny"] < 40.0

    def test_unknown_model_lookup_raises(self, tiny_corpus):
        result = run_cross_validation(
            tiny_corpus, classical_models={"AT": AdaptiveThresholdPredictor()}, max_folds=1
        )
        with pytest.raises(KeyError):
            result.mean_mae("missing")

    def test_summary_lists_models(self, tiny_corpus):
        result = run_cross_validation(
            tiny_corpus, classical_models={"AT": AdaptiveThresholdPredictor()}, max_folds=2
        )
        assert "AT" in result.summary()

    def test_chris_runtime_evaluated_per_fold(self, tiny_corpus, calibrated_experiment):
        """The end-to-end CHRIS system can ride along as a pseudo-model."""
        from repro.core.decision_engine import Constraint

        result = run_cross_validation(
            tiny_corpus,
            classical_models={"AT": AdaptiveThresholdPredictor()},
            fold_size=3,
            max_folds=2,
            chris_runtime=calibrated_experiment.runtime(),
            chris_constraint=Constraint.max_mae(6.0),
        )
        assert "CHRIS" in result.model_names
        assert 0.0 < result.mean_mae("CHRIS") < 40.0
        for fold in result.folds:
            assert "CHRIS" in fold.mae_per_model

    def test_chris_arguments_must_come_together(self, tiny_corpus, calibrated_experiment):
        import pytest

        with pytest.raises(ValueError):
            run_cross_validation(
                tiny_corpus,
                classical_models={"AT": AdaptiveThresholdPredictor()},
                max_folds=1,
                chris_runtime=calibrated_experiment.runtime(),
            )
