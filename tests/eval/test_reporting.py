"""Tests for the text reporting helpers."""

import pytest

from repro.eval.reporting import ComparisonRow, comparison_table, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["model", "MAE"], [["AT", "10.99"], ["TimePPG-Small", "5.60"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "model" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "TimePPG-Small" in text

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_non_string_cells_converted(self):
        text = format_table(["x"], [[1.5], [None]])
        assert "1.5" in text
        assert "None" in text


class TestComparisonTable:
    def test_ratio_computation(self):
        row = ComparisonRow("energy reduction", paper_value=2.03, measured_value=1.86, unit="x")
        assert row.ratio == pytest.approx(1.86 / 2.03)

    def test_zero_paper_value_gives_nan_ratio(self):
        row = ComparisonRow("something", paper_value=0.0, measured_value=1.0)
        assert row.ratio != row.ratio  # NaN

    def test_rendered_table_contains_all_rows(self):
        rows = [
            ComparisonRow("MAE @ constraint 1", 5.54, 5.19, "BPM"),
            ComparisonRow("energy reduction vs Small-local", 2.03, 1.86, "x"),
        ]
        text = comparison_table(rows)
        assert "MAE @ constraint 1" in text
        assert "5.54" in text and "5.19" in text
        assert "measured/paper" in text
