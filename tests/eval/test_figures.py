"""Tests for the figure data-series generators."""

import numpy as np
import pytest

from repro.core.configuration import ExecutionMode
from repro.eval.figures import (
    fig3_baseline_bars,
    fig4_configuration_space,
    fig5_threshold_sweep,
    local_only_pareto,
)
from repro.models.registry import PAPER_MODEL_STATS


class TestFig3:
    def test_bars_ordered_by_cost_and_match_table3(self, calibrated_experiment):
        series = fig3_baseline_bars(calibrated_experiment)
        assert series.model_names == ("AT", "TimePPG-Small", "TimePPG-Big")
        for name, watch, phone in zip(series.model_names, series.watch_compute_mj,
                                      series.phone_compute_mj):
            stats = PAPER_MODEL_STATS[name]
            assert watch == pytest.approx(stats.watch_energy_mj, rel=0.05)
            assert phone == pytest.approx(stats.phone_energy_mj, rel=0.02)
        # BLE energy is the same bar for every model.
        assert len(set(round(b, 6) for b in series.ble_mj)) == 1
        assert series.ble_mj[0] == pytest.approx(0.52, rel=0.02)

    def test_mae_ordering(self, calibrated_experiment):
        series = fig3_baseline_bars(calibrated_experiment)
        maes = dict(zip(series.model_names, series.mae_bpm))
        assert maes["TimePPG-Big"] < maes["TimePPG-Small"] < maes["AT"]


class TestFig4:
    def test_configuration_cloud_counts(self, oracle_experiment):
        series = fig4_configuration_space(oracle_experiment)
        assert series.n_configurations == 60
        assert len(series.local_points) == 30
        assert len(series.hybrid_points) == 30
        assert len(series.pareto_points) >= 3

    def test_selections_satisfy_their_constraints(self, oracle_experiment):
        series = fig4_configuration_space(oracle_experiment)
        assert series.selection_constraint1.mae_bpm <= 5.60
        assert series.selection_constraint2.mae_bpm <= 7.20
        # Relaxing the constraint can only reduce (or keep) the energy.
        assert (series.selection_constraint2.watch_energy_j
                <= series.selection_constraint1.watch_energy_j + 1e-12)

    def test_constraint1_selection_is_a_hybrid_at_big_configuration(self, oracle_experiment):
        """The paper's Sel. Model 1 combines AT (local) with TimePPG-Big
        offloaded to the phone."""
        series = fig4_configuration_space(oracle_experiment)
        config = series.selection_constraint1.configuration
        assert config.mode is ExecutionMode.HYBRID
        assert config.simple_model == "AT"
        assert config.complex_model == "TimePPG-Big"

    def test_baselines_present(self, oracle_experiment):
        series = fig4_configuration_space(oracle_experiment)
        labels = [label for label, _, _ in series.baseline_points]
        assert "AT@watch" in labels
        assert "TimePPG-Big@phone" in labels


class TestFig5:
    def test_sweep_covers_all_thresholds(self, oracle_experiment):
        series = fig5_threshold_sweep(oracle_experiment)
        assert series.thresholds == tuple(range(10))
        assert len(series.mae_bpm) == 10

    def test_mae_increases_and_energy_decreases_with_threshold(self, oracle_experiment):
        series = fig5_threshold_sweep(oracle_experiment)
        maes = series.mae_bpm
        totals = series.watch_total_mj
        # Energy falls monotonically as more windows stay on the watch.
        assert all(b <= a + 1e-9 for a, b in zip(totals, totals[1:]))
        # Error grows once AT starts handling genuinely hard windows; on the
        # very easiest activities AT can match or beat the DNN, so the strict
        # monotonicity only holds from the mid-range thresholds on.
        assert all(b >= a - 0.15 for a, b in zip(maes[4:], maes[5:]))
        assert maes[-1] > maes[0] + 2.0

    def test_offload_fraction_falls_from_one_to_zero(self, oracle_experiment):
        series = fig5_threshold_sweep(oracle_experiment)
        assert series.offload_fraction[0] == pytest.approx(1.0)
        assert series.offload_fraction[-1] == pytest.approx(0.0)
        assert all(b <= a + 1e-9 for a, b in zip(series.offload_fraction,
                                                 series.offload_fraction[1:]))

    def test_radio_energy_proportional_to_offloading(self, oracle_experiment):
        series = fig5_threshold_sweep(oracle_experiment)
        radio = np.array(series.watch_radio_mj)
        offload = np.array(series.offload_fraction)
        assert np.allclose(radio, offload * radio[0], atol=1e-6)

    def test_local_mode_sweep_has_no_radio_energy(self, oracle_experiment):
        series = fig5_threshold_sweep(
            oracle_experiment, simple_model="AT", complex_model="TimePPG-Small",
            mode=ExecutionMode.LOCAL,
        )
        assert all(r == 0.0 for r in series.watch_radio_mj)


class TestLocalOnlyPareto:
    def test_only_local_configurations(self, oracle_experiment):
        front = local_only_pareto(oracle_experiment.table)
        assert front
        assert all(c.is_local for c in front)
