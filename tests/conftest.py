"""Shared fixtures for the test suite.

Expensive objects (synthetic corpora, trained classifiers, the profiled
configuration table) are built once per session and shared; tests that
need to mutate state build their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticDaliaGenerator, SyntheticDatasetConfig, WindowedDataset
from repro.eval import CalibratedExperiment
from repro.ml import ActivityClassifier


@pytest.fixture(scope="session")
def small_dataset() -> WindowedDataset:
    """A small (4-subject, 45 s/activity) synthetic windowed corpus."""
    config = SyntheticDatasetConfig(n_subjects=4, activity_duration_s=45.0, seed=11)
    return SyntheticDaliaGenerator(config).generate_windowed()


@pytest.fixture(scope="session")
def clean_dataset() -> WindowedDataset:
    """An artifact-free corpus (motion artifacts disabled)."""
    config = SyntheticDatasetConfig(
        n_subjects=2, activity_duration_s=45.0, seed=5, artifact_scale=0.0
    )
    return SyntheticDaliaGenerator(config).generate_windowed()


@pytest.fixture(scope="session")
def trained_activity_classifier(small_dataset) -> ActivityClassifier:
    """An activity recognizer trained on the first subject of the corpus."""
    subject = small_dataset.subjects[0]
    classifier = ActivityClassifier(random_state=0)
    classifier.fit(subject.accel_windows, subject.activity)
    return classifier


@pytest.fixture(scope="session")
def calibrated_experiment() -> CalibratedExperiment:
    """The default calibrated-mode experiment (RF difficulty detector)."""
    return CalibratedExperiment.build(seed=0, n_subjects=4, activity_duration_s=40.0)


@pytest.fixture(scope="session")
def oracle_experiment() -> CalibratedExperiment:
    """Calibrated experiment with an oracle difficulty detector."""
    return CalibratedExperiment.build(
        seed=1, n_subjects=6, activity_duration_s=60.0, use_oracle_difficulty=True
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic random generator for a test."""
    return np.random.default_rng(1234)
