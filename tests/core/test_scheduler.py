"""Unit tests for the dynamic-session fleet scheduler.

Bit-equivalence with sequential replay across randomized scenarios is
pinned by :mod:`tests.core.test_fleet_properties`; these tests cover the
scheduler's online lifecycle: streaming completion, dynamic arrival and
departure, retirement, pause/resume, failure reporting, validation, and
the :meth:`~repro.eval.experiment.CalibratedExperiment.run_fleet`
wiring.
"""

import copy
import time

import numpy as np
import pytest

from repro.core.decision_engine import Constraint
from repro.core.runtime import CHRISRuntime
from repro.core.scheduler import FleetScheduler, SessionState, VirtualClock
from repro.eval.benchmarking import stateful_zoo
from repro.data.dataset import WindowedSubject
from repro.hw.platform import CostTableRegistry, WearableSystem
from repro.signal.windowing import DEFAULT_WINDOW_SPEC

from tests.core.test_runtime_batched import assert_results_identical

CONSTRAINT = Constraint.max_mae(6.0)


def make_runtime(experiment) -> CHRISRuntime:
    return CHRISRuntime(
        zoo=copy.deepcopy(experiment.zoo),
        engine=experiment.engine,
        system=experiment.system,
    )


def make_scheduler(experiment, **kwargs) -> FleetScheduler:
    kwargs.setdefault("use_oracle_difficulty", True)
    return FleetScheduler(make_runtime(experiment), CONSTRAINT, **kwargs)


def make_subject(subject_id: str, n_windows: int = 40, seed: int = 0) -> WindowedSubject:
    rng = np.random.default_rng(seed)
    return WindowedSubject(
        subject_id=subject_id,
        ppg_windows=rng.standard_normal((n_windows, 16)),
        accel_windows=rng.standard_normal((n_windows, 16, 3)),
        activity=rng.integers(0, 9, size=n_windows),
        hr=70.0 + 30.0 * rng.random(n_windows),
        spec=DEFAULT_WINDOW_SPEC,
    )


class TestLifecycle:
    def test_sessions_stream_as_completed(self, calibrated_experiment):
        subjects = [make_subject(f"s{i}", seed=i) for i in range(5)]
        with make_scheduler(calibrated_experiment, max_workers=2) as scheduler:
            sessions = [scheduler.submit(s.subject_id, s) for s in subjects]
            seen = []
            for session in scheduler.as_completed():
                assert session.state is SessionState.DONE
                assert session.result.n_windows == session.recording.n_windows
                seen.append(session.subject_id)
        assert sorted(seen) == sorted(s.subject_id for s in subjects)
        assert all(s.done for s in sessions)

    def test_arrivals_during_consumption_extend_the_stream(self, calibrated_experiment):
        """Sessions submitted while iterating still stream — no fixed list."""
        with make_scheduler(calibrated_experiment) as scheduler:
            scheduler.submit("first", make_subject("first", seed=1))
            seen = []
            submitted_late = False
            for session in scheduler.as_completed():
                seen.append(session.subject_id)
                if not submitted_late:
                    submitted_late = True
                    scheduler.submit("second", make_subject("second", seed=2))
        assert seen == ["first", "second"]

    def test_subject_id_can_be_resubmitted_after_completion(self, calibrated_experiment):
        subject = make_subject("repeat", seed=3)
        with make_scheduler(calibrated_experiment) as scheduler:
            first = scheduler.submit("repeat", subject)
            scheduler.join()
            second = scheduler.submit("repeat", subject)
            scheduler.join()
        assert first.state is second.state is SessionState.DONE
        # The predictor streams advanced between the runs (online
        # semantics), so the second replay is a later stream position.
        assert first.result.n_windows == second.result.n_windows

    def test_live_duplicate_subject_id_rejected(self, calibrated_experiment):
        scheduler = make_scheduler(calibrated_experiment)
        scheduler.pause()
        try:
            scheduler.submit("dup", make_subject("dup"))
            with pytest.raises(ValueError, match="already live"):
                scheduler.submit("dup", make_subject("dup"))
        finally:
            scheduler.close()

    def test_submit_after_close_rejected(self, calibrated_experiment):
        scheduler = make_scheduler(calibrated_experiment)
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit("late", make_subject("late"))

    def test_close_is_idempotent_and_joins(self, calibrated_experiment):
        scheduler = make_scheduler(calibrated_experiment)
        session = scheduler.submit("only", make_subject("only"))
        scheduler.close()
        scheduler.close()
        assert session.state is SessionState.DONE


class TestRetireAndPause:
    def test_retire_queued_session_never_runs(self, calibrated_experiment):
        scheduler = make_scheduler(calibrated_experiment)
        scheduler.pause()  # deterministic: nothing dispatches while paused
        try:
            keep = scheduler.submit("keep", make_subject("keep", seed=4))
            drop = scheduler.submit("drop", make_subject("drop", seed=5))
            assert scheduler.retire(drop) is True
            assert drop.state is SessionState.RETIRED
            scheduler.resume()
            scheduler.join()
        finally:
            scheduler.close()
        assert keep.state is SessionState.DONE
        assert drop.result is None
        # A retired session consumes no predictor stream: replaying only
        # the kept subject sequentially reproduces the kept result.
        reference = make_runtime(calibrated_experiment).run_many(
            [keep.recording], CONSTRAINT, use_oracle_difficulty=True, mega_batched=False
        )
        assert_results_identical(reference.results["keep"], keep.result)

    def test_retire_completed_session_returns_false(self, calibrated_experiment):
        with make_scheduler(calibrated_experiment) as scheduler:
            session = scheduler.submit("done", make_subject("done"))
            scheduler.join()
            assert scheduler.retire(session) is False
            assert session.state is SessionState.DONE

    def test_retired_id_is_immediately_reusable(self, calibrated_experiment):
        scheduler = make_scheduler(calibrated_experiment)
        scheduler.pause()
        try:
            first = scheduler.submit("reuse", make_subject("reuse", seed=6))
            assert scheduler.retire(first)
            second = scheduler.submit("reuse", make_subject("reuse", seed=7))
            scheduler.resume()
            scheduler.join()
            assert second.state is SessionState.DONE
        finally:
            scheduler.close()

    def test_pause_holds_dispatch_until_resume(self, calibrated_experiment):
        scheduler = make_scheduler(calibrated_experiment)
        try:
            scheduler.pause()
            session = scheduler.submit("held", make_subject("held"))
            assert scheduler.next_done(timeout=0.2) is None
            assert session.state is SessionState.QUEUED
            scheduler.resume()
            scheduler.join()
            assert session.state is SessionState.DONE
        finally:
            scheduler.close()


class TestValidationAndFailure:
    def test_constructor_validation(self, calibrated_experiment):
        runtime = make_runtime(calibrated_experiment)
        with pytest.raises(ValueError):
            FleetScheduler(runtime, CONSTRAINT, max_workers=0)
        with pytest.raises(ValueError):
            FleetScheduler(runtime, CONSTRAINT, max_batch_size=0)

    def test_trace_shape_validated_at_submit(self, calibrated_experiment):
        with make_scheduler(calibrated_experiment) as scheduler:
            with pytest.raises(ValueError, match="one entry per window"):
                scheduler.submit(
                    "traced",
                    make_subject("traced", n_windows=20),
                    connected_trace=np.ones(7, dtype=bool),
                )

    def test_empty_recording_rejected_at_submit(self, calibrated_experiment):
        """Per-session input problems surface at submit, where they cannot
        poison a batch of unrelated queued sessions."""
        empty = WindowedSubject(
            subject_id="empty",
            ppg_windows=np.empty((0, 16)),
            accel_windows=np.empty((0, 16, 3)),
            activity=np.empty(0, dtype=int),
            hr=np.empty(0),
            spec=DEFAULT_WINDOW_SPEC,
        )
        with make_scheduler(calibrated_experiment) as scheduler:
            with pytest.raises(ValueError, match="no windows"):
                scheduler.submit("empty", empty)

    @staticmethod
    def _break_predictor(scheduler) -> None:
        """Break prediction *persistently*: the stream zoo AND the pristine
        snapshot retries rebuild from, so every attempt fails."""

        def boom(*args, **kwargs):
            raise RuntimeError("model service down")

        for zoo in (scheduler._runtime.zoo, scheduler._pristine_zoo):
            for entry in zoo:
                entry.predictor.predict = boom

    def test_failed_session_reports_the_error(self, calibrated_experiment):
        scheduler = make_scheduler(calibrated_experiment, retry_backoff_s=0.0)
        self._break_predictor(scheduler)
        with scheduler:
            session = scheduler.submit("broken", make_subject("broken"))
            scheduler.join()
        assert session.state is SessionState.FAILED
        assert isinstance(session.error, RuntimeError)
        assert session.result is None

    def test_execution_failure_quarantines_without_poisoning(
        self, calibrated_experiment
    ):
        """A batch that exhausts its retries fails alone: the scheduler
        keeps accepting and completing later sessions (degrade, don't
        die), and — as-if-planned stream accounting — the later session
        replays exactly as it would have after a *successful* first batch
        of the same plan."""
        scheduler = make_scheduler(
            calibrated_experiment, max_retries=1, retry_backoff_s=0.0
        )
        self._break_predictor(scheduler)
        with scheduler:
            failed = scheduler.submit("bad", make_subject("bad", seed=60))
            scheduler.join()
            assert failed.state is SessionState.FAILED
            # Un-break the pristine snapshot: the next batch's serial
            # restore rebuilt the stream zoo from it, so recovery flows
            # through exactly the rebuild path under test.
            for entry in scheduler._pristine_zoo:
                del entry.predictor.predict
            for entry in scheduler._runtime.zoo:
                if "predict" in vars(entry.predictor):
                    del entry.predictor.predict
            recovered = scheduler.submit("good", make_subject("good", seed=61))
            scheduler.join()
        assert recovered.state is SessionState.DONE
        assert recovered.result is not None

    def test_transient_failure_is_retried_to_done(self, calibrated_experiment):
        """A batch that fails once and then succeeds resolves DONE with
        results bit-identical to an undisturbed run — the retry rebuilds
        the batch's exact planned start position."""
        import tempfile

        from repro.core import faults

        subject = make_subject("flaky", seed=42)
        reference = make_runtime(calibrated_experiment).run_many(
            [subject], CONSTRAINT, use_oracle_difficulty=True, mega_batched=False
        )
        with tempfile.TemporaryDirectory() as fault_dir:
            plan = faults.FaultPlan(fault_dir)
            plan.arm("scheduler.batch", times=1, kind="exception")
            with faults.injected_faults(plan):
                with make_scheduler(
                    calibrated_experiment, retry_backoff_s=0.0
                ) as scheduler:
                    session = scheduler.submit("flaky", subject)
                    scheduler.join()
            assert plan.armed() == 0  # the fault really fired
        assert session.state is SessionState.DONE
        assert_results_identical(reference.results["flaky"], session.result)

    def test_batch_after_quarantined_batch_is_delivered_done(
        self, calibrated_experiment
    ):
        """As-if-planned accounting: a session dispatched after a
        quarantined batch completes DONE, positioned exactly as if the
        failed batch had executed."""
        scheduler = make_scheduler(
            calibrated_experiment, max_batch_size=1, max_retries=0, retry_backoff_s=0.0
        )
        calls = {"n": 0}
        for entry in scheduler._runtime.zoo:
            original = entry.predictor.predict

            def flaky(*args, _original=original, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("transient model failure")
                return _original(*args, **kwargs)

            entry.predictor.predict = flaky
        scheduler.pause()
        try:
            first = scheduler.submit("first", make_subject("first", seed=40))
            second = scheduler.submit("second", make_subject("second", seed=41))
            scheduler.resume()
            scheduler.join()
        finally:
            scheduler.close()
        assert first.state is SessionState.FAILED
        assert first.result is None
        assert second.state is SessionState.DONE
        assert second.result is not None

    def test_session_id_relabel_backs_one_recording_under_many_ids(
        self, calibrated_experiment
    ):
        """The session id is authoritative: submitting a recording under a
        different id relabels it instead of deadlocking the worker (the
        result used to be keyed by the recording's own id)."""
        recording = make_subject("original", seed=8)
        with make_scheduler(calibrated_experiment) as scheduler:
            alias = scheduler.submit("alias-id", recording)
            original = scheduler.submit("original", recording)
            scheduler.join()
        assert alias.state is SessionState.DONE
        assert original.state is SessionState.DONE
        assert alias.result.n_windows == recording.n_windows
        assert alias.recording.subject_id == "alias-id"
        assert recording.subject_id == "original"  # caller's object untouched


class TestHeterogeneousSessions:
    def test_mixed_revisions_share_one_registry(self, calibrated_experiment):
        registry = CostTableRegistry()
        stock = WearableSystem(cost_registry=registry)
        compressed = WearableSystem(
            cost_registry=registry, offload_payload_bytes=64 * 4 * 2
        )
        subjects = [make_subject(f"h{i}", seed=10 + i) for i in range(4)]
        systems = {"h0": stock, "h1": compressed, "h2": compressed}
        with make_scheduler(calibrated_experiment, max_workers=2) as scheduler:
            sessions = [
                scheduler.submit(s.subject_id, s, system=systems.get(s.subject_id))
                for s in subjects
            ]
            scheduler.join()
        assert all(s.state is SessionState.DONE for s in sessions)
        assert registry.n_revisions == 2
        reference = make_runtime(calibrated_experiment).run_many(
            subjects,
            CONSTRAINT,
            use_oracle_difficulty=True,
            mega_batched=False,
            systems=systems,
        )
        for session in sessions:
            assert_results_identical(reference.results[session.subject_id], session.result)

    def test_compressed_offload_changes_radio_energy_only_for_its_device(
        self, calibrated_experiment
    ):
        """Heterogeneity is real: the rev-B session's offloaded windows cost
        less radio energy than the stock session's, in one scheduler run."""
        subject = make_subject("stock-dev", n_windows=80, seed=21)
        twin = make_subject("rev-b-dev", n_windows=80, seed=21)
        compressed = WearableSystem(
            cost_registry=CostTableRegistry(), offload_payload_bytes=64
        )
        with make_scheduler(calibrated_experiment) as scheduler:
            stock_session = scheduler.submit("stock-dev", subject)
            rev_b_session = scheduler.submit("rev-b-dev", twin, system=compressed)
            scheduler.join()
        stock_radio = stock_session.result.watch_radio_j[stock_session.result.offloaded]
        rev_b_radio = rev_b_session.result.watch_radio_j[rev_b_session.result.offloaded]
        assert stock_radio.size and rev_b_radio.size
        assert rev_b_radio.max() < stock_radio.min()


class TestExperimentWiring:
    def test_run_fleet_via_scheduler_matches_executor_path(
        self, calibrated_experiment, small_dataset
    ):
        executor_fleet = copy.deepcopy(calibrated_experiment).run_fleet(
            small_dataset, CONSTRAINT
        )
        with copy.deepcopy(calibrated_experiment).fleet_scheduler(
            CONSTRAINT, max_workers=2
        ) as scheduler:
            scheduled_fleet = calibrated_experiment.run_fleet(
                small_dataset, CONSTRAINT, scheduler=scheduler
            )
        assert scheduled_fleet.subject_ids == executor_fleet.subject_ids
        for sid in executor_fleet.subject_ids:
            assert_results_identical(
                executor_fleet.results[sid], scheduled_fleet.results[sid]
            )

    def test_run_fleet_rejects_mismatched_constraint(
        self, calibrated_experiment, small_dataset
    ):
        with calibrated_experiment.fleet_scheduler(CONSTRAINT) as scheduler:
            with pytest.raises(ValueError, match="constraint"):
                calibrated_experiment.run_fleet(
                    small_dataset, Constraint.max_mae(4.0), scheduler=scheduler
                )

    def test_run_fleet_rejects_decision_affecting_overrides(
        self, calibrated_experiment, small_dataset, trained_activity_classifier
    ):
        """Arguments that would change decisions must not be silently
        ignored on the scheduler path."""
        with calibrated_experiment.fleet_scheduler(CONSTRAINT) as scheduler:
            with pytest.raises(ValueError, match="use_oracle_difficulty"):
                calibrated_experiment.run_fleet(
                    small_dataset,
                    CONSTRAINT,
                    use_oracle_difficulty=False,
                    scheduler=scheduler,
                )
            with pytest.raises(ValueError, match="activity_classifier"):
                calibrated_experiment.run_fleet(
                    small_dataset,
                    CONSTRAINT,
                    activity_classifier=trained_activity_classifier,
                    scheduler=scheduler,
                )


class TestDispatchFailurePoisoning:
    def _fail_pool_submit_once(self, scheduler) -> None:
        original = scheduler._pool.submit

        def boom(*args, **kwargs):
            scheduler._pool.submit = original
            raise MemoryError("transient enqueue failure")

        scheduler._pool.submit = boom

    def test_submit_failure_does_not_poison_snapshot_path(self, calibrated_experiment):
        """With workers > 1 the stream was fast-forwarded before
        pool.submit — as-if-planned accounting already covers the batch
        that never ran, so the scheduler keeps serving."""
        scheduler = make_scheduler(calibrated_experiment, max_workers=2)
        self._fail_pool_submit_once(scheduler)
        with scheduler:
            lost = scheduler.submit("lost", make_subject("lost", seed=50))
            scheduler.join()
            assert lost.state is SessionState.FAILED
            assert isinstance(lost.error, MemoryError)
            recovered = scheduler.submit("next", make_subject("next", seed=51))
            scheduler.join()
        assert recovered.state is SessionState.DONE

    def test_submit_failure_does_not_poison_serial_path(self, calibrated_experiment):
        """With one worker nothing was advanced before pool.submit, so the
        scheduler keeps serving after the transient failure."""
        scheduler = make_scheduler(calibrated_experiment, max_workers=1)
        self._fail_pool_submit_once(scheduler)
        with scheduler:
            lost = scheduler.submit("lost", make_subject("lost", seed=52))
            scheduler.join()
            recovered = scheduler.submit("next", make_subject("next", seed=53))
            scheduler.join()
        assert lost.state is SessionState.FAILED
        assert isinstance(lost.error, MemoryError)
        assert recovered.state is SessionState.DONE


class GatedPredictor:
    """Predictor whose ``predict`` blocks until released.

    The gates are *class* attributes, so they survive the scheduler's
    deep copy of the runtime (instances are copied, the class is shared)
    — the test can hold a dispatched batch mid-execution from outside.
    """

    # Installed fresh by each test.
    STARTED = None
    RELEASE = None

    REQUIRES_SIGNALS = False
    FLEET_BATCHABLE = True

    def __init__(self) -> None:
        self.fs = 32.0
        self._last_estimate = None

    def reset(self) -> None:
        self._last_estimate = None

    def advance_fleet_state(self, n_windows: int) -> None:
        self.reset()

    def fleet_state_signature(self):
        return None

    def predict(self, ppg_windows, accel_windows=None, **context):
        type(self).STARTED.set()
        assert type(self).RELEASE.wait(timeout=30), "test gate never released"
        return np.full(np.asarray(ppg_windows).shape[0], 72.0)

    def predict_window(self, ppg_window, accel_window=None, **context):
        return 72.0


class TestRetireRacingDispatchedBatch:
    """retire() on a session already inside an in-flight mega-batch.

    The race: the dispatcher popped the session (state RUNNING), the
    worker thread is executing its batch, and the consumer calls
    ``retire``.  The retire must refuse (``False``), must not deliver a
    RETIRED resolution (the session resolves exactly once, as DONE when
    the batch lands), and must not poison the epoch — later submissions
    still run and deliver.
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_retire_neither_delivers_nor_poisons(self, calibrated_experiment, workers):
        import threading

        GatedPredictor.STARTED = threading.Event()
        GatedPredictor.RELEASE = threading.Event()
        runtime = make_runtime(calibrated_experiment)
        for entry in runtime.zoo:
            entry.predictor = GatedPredictor()

        scheduler = FleetScheduler(
            runtime, CONSTRAINT, max_workers=workers, use_oracle_difficulty=True
        )
        try:
            session = scheduler.submit("inflight", make_subject("inflight", seed=1))
            assert GatedPredictor.STARTED.wait(timeout=30)

            assert scheduler.retire(session) is False
            assert session.state is SessionState.RUNNING

            GatedPredictor.RELEASE.set()
            scheduler.join()
            assert session.state is SessionState.DONE
            assert session.result is not None
            assert session.result.n_windows == session.recording.n_windows

            # Exactly one delivery, as DONE — the refused retire did not
            # enqueue a second (RETIRED) resolution.
            delivered = scheduler.next_done(timeout=5.0)
            assert delivered is session
            assert delivered.state is SessionState.DONE
            assert scheduler.next_done(timeout=0.05) is None

            # The epoch is not poisoned: the stream keeps serving.
            late = scheduler.submit("late", make_subject("late", seed=2))
            scheduler.join()
            assert late.state is SessionState.DONE
            assert scheduler.next_done(timeout=5.0) is late
        finally:
            GatedPredictor.RELEASE.set()
            scheduler.close()


class GatedFailingPredictor(GatedPredictor):
    """A :class:`GatedPredictor` whose ``predict`` raises once released."""

    def predict(self, ppg_windows, accel_windows=None, **context):
        type(self).STARTED.set()
        assert type(self).RELEASE.wait(timeout=30), "test gate never released"
        raise RuntimeError("predict failed after release")


class TestCloseRacingFailingBatch:
    """``close(wait=True)`` while an in-flight batch is about to fail.

    The race: a dispatched batch is mid-execution when the consumer calls
    ``close(wait=True)``; the batch then fails.  The session must resolve
    exactly once (FAILED), ``close`` must return (``join`` observes
    ``_unresolved`` reaching zero — a double resolution would push it
    negative or strand it positive and hang the close), and
    ``as_completed`` must deliver the failed session and terminate.
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_close_wait_drains_failing_batch(self, calibrated_experiment, workers):
        import threading

        GatedFailingPredictor.STARTED = threading.Event()
        GatedFailingPredictor.RELEASE = threading.Event()
        runtime = make_runtime(calibrated_experiment)
        for entry in runtime.zoo:
            entry.predictor = GatedFailingPredictor()

        scheduler = FleetScheduler(
            runtime,
            CONSTRAINT,
            max_workers=workers,
            use_oracle_difficulty=True,
            max_retries=0,
            retry_backoff_s=0.0,
        )
        session = scheduler.submit("doomed", make_subject("doomed", seed=5))
        assert GatedFailingPredictor.STARTED.wait(timeout=30)

        closer = threading.Thread(target=scheduler.close, kwargs={"wait": True})
        closer.start()
        try:
            GatedFailingPredictor.RELEASE.set()
            closer.join(timeout=30)
            assert not closer.is_alive(), "close(wait=True) hung on the failing batch"

            assert session.state is SessionState.FAILED
            assert isinstance(session.error, RuntimeError)
            assert session.result is None
            # Exactly one delivery, then a clean end of stream.
            delivered = list(scheduler.as_completed())
            assert delivered == [session]
            assert scheduler._unresolved == 0  # unguarded read: scheduler is closed
        finally:
            GatedFailingPredictor.RELEASE.set()
            closer.join(timeout=5)


def make_stateful_runtime(experiment) -> CHRISRuntime:
    """A fully stateful zoo (spectral tracker + smoothed calibrated
    trackers) — the hardest continuation case for per-window streaming."""
    return CHRISRuntime(
        zoo=stateful_zoo(copy.deepcopy(experiment.zoo)),
        engine=experiment.engine,
        system=experiment.system,
    )


def push_window(stream, subject: WindowedSubject, w: int):
    return stream.push(
        subject.ppg_windows[w],
        subject.accel_windows[w],
        activity=int(subject.activity[w]),
        hr=float(subject.hr[w]),
    )


class TestVirtualClock:
    def test_clock_advances_only_on_sleep(self):
        clock = VirtualClock(start=5.0)
        assert clock() == 5.0
        clock.sleep(1.5)
        assert clock() == 6.5
        clock.advance(0.5)
        assert clock() == 7.0
        with pytest.raises(ValueError, match="negative"):
            clock.sleep(-1.0)


class TestServingValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "bogus"},
            {"slo_s": 0.0},
            {"deadline_slack_s": -0.1},
            {"max_streams": 0},
        ],
    )
    def test_serving_parameter_validation(self, calibrated_experiment, kwargs):
        with pytest.raises(ValueError):
            make_scheduler(calibrated_experiment, **kwargs)

    def test_submit_slo_validated(self, calibrated_experiment):
        with make_scheduler(calibrated_experiment) as scheduler:
            with pytest.raises(ValueError, match="slo_s"):
                scheduler.submit("s0", make_subject("s0"), slo_s=0.0)

    def test_open_stream_requires_single_worker(self, calibrated_experiment):
        with make_scheduler(calibrated_experiment, max_workers=2) as scheduler:
            with pytest.raises(ValueError, match="max_workers"):
                scheduler.open_stream("w0")

    def test_open_stream_requires_stacked_state(self, calibrated_experiment):
        runtime = CHRISRuntime(
            zoo=copy.deepcopy(calibrated_experiment.zoo),
            engine=calibrated_experiment.engine,
            system=calibrated_experiment.system,
            stacked_state=False,
        )
        with FleetScheduler(runtime, CONSTRAINT, use_oracle_difficulty=True) as scheduler:
            with pytest.raises(ValueError, match="stacked_state"):
                scheduler.open_stream("w0")

    def test_duplicate_stream_id_rejected(self, calibrated_experiment):
        with make_scheduler(calibrated_experiment) as scheduler:
            scheduler.open_stream("w0")
            with pytest.raises(ValueError, match="already open"):
                scheduler.open_stream("w0")

    def test_slot_exhaustion_rejected(self, calibrated_experiment):
        with make_scheduler(calibrated_experiment, max_streams=1) as scheduler:
            scheduler.open_stream("w0")
            with pytest.raises(RuntimeError, match="streams"):
                scheduler.open_stream("w1")

    def test_push_shape_validated(self, calibrated_experiment):
        subject = make_subject("w0", n_windows=4)
        with make_scheduler(calibrated_experiment) as scheduler:
            stream = scheduler.open_stream("w0")
            with pytest.raises(ValueError):
                stream.push(subject.ppg_windows[:2])
            with pytest.raises(ValueError):
                stream.push(subject.ppg_windows[0], np.zeros((16, 2)))

    def test_push_after_stream_close_rejected(self, calibrated_experiment):
        subject = make_subject("w0", n_windows=1)
        with make_scheduler(calibrated_experiment) as scheduler:
            stream = scheduler.open_stream("w0")
            stream.close()
            stream.close()  # idempotent
            with pytest.raises(RuntimeError, match="closed"):
                push_window(stream, subject, 0)

    def test_open_stream_after_scheduler_close_rejected(self, calibrated_experiment):
        scheduler = make_scheduler(calibrated_experiment)
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.open_stream("w0")


class TestDeadlinePolicy:
    def test_deadline_release_fires_without_close(self, calibrated_experiment):
        # One lone window, a queue that never fills: only the deadline
        # can release it.  join() returning at all is the assertion.
        with make_scheduler(
            calibrated_experiment,
            policy="deadline",
            slo_s=0.05,
            deadline_slack_s=0.0,
            max_batch_size=64,
        ) as scheduler:
            stream = scheduler.open_stream("w0")
            session = push_window(stream, make_subject("w0", n_windows=1), 0)
            scheduler.join()
            assert session.state is SessionState.DONE
            stream.close()

    def test_close_wait_drains_held_windows(self, calibrated_experiment):
        # A far-future deadline on a virtual clock: nothing would ever
        # dispatch on its own, so close(wait=True) must drain the queue
        # without dropping a window.
        clock = VirtualClock()
        subject = make_subject("w0", n_windows=6)
        scheduler = make_scheduler(
            calibrated_experiment, policy="deadline", slo_s=1e6, clock=clock
        )
        stream = scheduler.open_stream("w0")
        sessions = {push_window(stream, subject, w) for w in range(subject.n_windows)}
        time.sleep(0.2)
        assert all(s.state is SessionState.QUEUED for s in sessions)
        scheduler.close(wait=True)
        assert all(s.state is SessionState.DONE for s in sessions)
        assert sum(s.recording.n_windows for s in sessions) == subject.n_windows

    def test_pause_resume_under_deadline_policy(self, calibrated_experiment):
        # Pause outranks an expired deadline; resume releases the batch.
        subject = make_subject("w0", n_windows=4)
        with make_scheduler(
            calibrated_experiment, policy="deadline", slo_s=0.02, deadline_slack_s=0.0
        ) as scheduler:
            scheduler.pause()
            stream = scheduler.open_stream("w0")
            sessions = {push_window(stream, subject, w) for w in range(4)}
            time.sleep(0.1)
            assert all(s.state is SessionState.QUEUED for s in sessions)
            scheduler.resume()
            scheduler.join()
            assert all(s.state is SessionState.DONE for s in sessions)
            stats = scheduler.latency_stats()
            assert stats["n_windows"] == 4
            # The pause held every window past its 20 ms budget.
            assert stats["deadline_miss_fraction"] == 1.0
            stream.close()

    def test_no_deadline_state_leaks_after_drain(self, calibrated_experiment):
        subject = make_subject("w0", n_windows=5)
        scheduler = make_scheduler(
            calibrated_experiment, policy="deadline", slo_s=0.01, deadline_slack_s=0.0
        )
        streams = [scheduler.open_stream(f"w{i}") for i in range(3)]
        for w in range(subject.n_windows):
            push_window(streams[w % 3], subject, w)
        scheduler.join()
        for stream in streams:
            stream.close()
        assert not scheduler._pending
        assert scheduler._unresolved == 0
        assert sorted(scheduler._free_slots) == list(range(scheduler.max_streams))
        assert scheduler.latency_stats()["n_windows"] == subject.n_windows
        scheduler.close()


class TestStreamingBitIdentity:
    def test_one_batch_per_window_matches_replay(self, calibrated_experiment):
        # The hardest continuation case: every window its own batch, on a
        # fully stateful zoo.  Predictions, routing, and the final
        # predictor streams must all equal whole-recording replay.
        subject = make_subject("w0", n_windows=12, seed=3)
        reference_runtime = make_stateful_runtime(calibrated_experiment)
        reference = reference_runtime.run_many(
            [subject], CONSTRAINT, use_oracle_difficulty=True
        ).results["w0"]

        scheduler = FleetScheduler(
            make_stateful_runtime(calibrated_experiment),
            CONSTRAINT,
            use_oracle_difficulty=True,
        )
        stream = scheduler.open_stream("w0")
        sessions = []
        for w in range(subject.n_windows):
            sessions.append(push_window(stream, subject, w))
            scheduler.join()
        stats = scheduler.latency_stats()
        assert stats["n_batches"] == subject.n_windows

        predicted = np.concatenate([s.result.predicted_hr for s in sessions])
        models = np.concatenate([s.result.model_names for s in sessions])
        np.testing.assert_array_equal(models, reference.model_names)
        np.testing.assert_array_equal(predicted, reference.predicted_hr)
        for entry, ref_entry in zip(scheduler._runtime.zoo, reference_runtime.zoo):
            assert (
                entry.predictor.fleet_state_signature()
                == ref_entry.predictor.fleet_state_signature()
            )
        stream.close()
        scheduler.close()

    def test_coalesced_burst_matches_replay(self, calibrated_experiment):
        # Held deadline: every push coalesces into one growing session,
        # released as a single batch — still bit-identical to replay.
        clock = VirtualClock()
        subject = make_subject("w0", n_windows=10, seed=4)
        reference = (
            make_stateful_runtime(calibrated_experiment)
            .run_many([subject], CONSTRAINT, use_oracle_difficulty=True)
            .results["w0"]
        )
        scheduler = FleetScheduler(
            make_stateful_runtime(calibrated_experiment),
            CONSTRAINT,
            use_oracle_difficulty=True,
            policy="deadline",
            slo_s=1e6,
            clock=clock,
        )
        stream = scheduler.open_stream("w0")
        sessions = {push_window(stream, subject, w) for w in range(subject.n_windows)}
        scheduler.close(wait=True)
        assert scheduler.latency_stats()["n_batches"] == 1
        ordered = sorted(sessions, key=lambda s: s.ticket)
        predicted = np.concatenate([s.result.predicted_hr for s in ordered])
        np.testing.assert_array_equal(predicted, reference.predicted_hr)

    def test_multi_stream_round_robin_matches_replay(self, calibrated_experiment):
        subjects = [make_subject(f"w{i}", n_windows=8, seed=10 + i) for i in range(3)]
        reference = make_stateful_runtime(calibrated_experiment).run_many(
            subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        scheduler = FleetScheduler(
            make_stateful_runtime(calibrated_experiment),
            CONSTRAINT,
            use_oracle_difficulty=True,
        )
        streams = [scheduler.open_stream(s.subject_id) for s in subjects]
        sessions = []
        for w in range(subjects[0].n_windows):
            for subject, stream in zip(subjects, streams):
                sessions.append(push_window(stream, subject, w))
        scheduler.join()
        for stream in streams:
            stream.close()

        by_stream: dict[str, list] = {s.subject_id: [] for s in subjects}
        for session in sessions:
            by_stream[session.subject_id.split("#")[0]].append(session)
        for subject in subjects:
            chunks = sorted(set(by_stream[subject.subject_id]), key=lambda s: s.ticket)
            predicted = np.concatenate([c.result.predicted_hr for c in chunks])
            np.testing.assert_array_equal(
                predicted, reference.results[subject.subject_id].predicted_hr
            )
        # Every state slot is recycled once its stream closed and drained.
        assert sorted(scheduler._free_slots) == list(range(scheduler.max_streams))
        scheduler.close()

    def test_retired_stream_session_keeps_stream_usable(self, calibrated_experiment):
        # Retiring a held (coalesced) streaming session drops its windows
        # without touching the trackers: the stream keeps serving, and
        # the next window predicts exactly like a fresh stream's first.
        clock = VirtualClock()
        subject = make_subject("w0", n_windows=3, seed=5)
        reference = (
            make_stateful_runtime(calibrated_experiment)
            .run_many(
                [
                    WindowedSubject(
                        subject_id="w0",
                        ppg_windows=subject.ppg_windows[2:],
                        accel_windows=subject.accel_windows[2:],
                        activity=subject.activity[2:],
                        hr=subject.hr[2:],
                        spec=subject.spec,
                    )
                ],
                CONSTRAINT,
                use_oracle_difficulty=True,
            )
            .results["w0"]
        )
        scheduler = FleetScheduler(
            make_stateful_runtime(calibrated_experiment),
            CONSTRAINT,
            use_oracle_difficulty=True,
            policy="deadline",
            slo_s=1e6,
            clock=clock,
        )
        stream = scheduler.open_stream("w0")
        held = push_window(stream, subject, 0)
        assert push_window(stream, subject, 1) is held  # coalesced
        assert scheduler.retire(held)
        later = push_window(stream, subject, 2)
        scheduler.close(wait=True)
        assert held.state is SessionState.RETIRED
        assert later.state is SessionState.DONE
        np.testing.assert_array_equal(later.result.predicted_hr, reference.predicted_hr)
