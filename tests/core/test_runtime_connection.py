"""Tests for the connection-aware runtime (BLE dropping and recovering)."""

import numpy as np
import pytest

from repro.core.decision_engine import Constraint
from repro.core.runtime import CHRISRuntime


@pytest.fixture()
def runtime(oracle_experiment):
    return CHRISRuntime(
        zoo=oracle_experiment.zoo,
        engine=oracle_experiment.engine,
        system=oracle_experiment.system,
    )


class TestConnectionTrace:
    def test_always_connected_matches_plain_run(self, runtime, small_dataset):
        subject = small_dataset.subjects[1]
        constraint = Constraint.max_mae(6.0)
        connected = np.ones(subject.n_windows, dtype=bool)
        traced = runtime.run_with_connection_trace(
            subject, constraint, connected, use_oracle_difficulty=True
        )
        plain = runtime.run(subject, constraint, use_oracle_difficulty=True)
        assert traced.mae_bpm == pytest.approx(plain.mae_bpm, rel=0.3)
        assert traced.offload_fraction == pytest.approx(plain.offload_fraction, abs=0.02)
        assert traced.mean_watch_energy_j == pytest.approx(plain.mean_watch_energy_j, rel=0.02)

    def test_never_connected_never_offloads(self, runtime, small_dataset):
        subject = small_dataset.subjects[1]
        connected = np.zeros(subject.n_windows, dtype=bool)
        result = runtime.run_with_connection_trace(
            subject, Constraint.max_mae(7.0), connected, use_oracle_difficulty=True
        )
        assert result.offload_fraction == 0.0
        assert all(not d.offloaded for d in result.decisions)

    def test_mid_run_disconnection_switches_configuration(self, runtime, small_dataset):
        subject = small_dataset.subjects[2]
        n = subject.n_windows
        connected = np.ones(n, dtype=bool)
        connected[n // 2:] = False
        result = runtime.run_with_connection_trace(
            subject, Constraint.max_mae(6.0), connected, use_oracle_difficulty=True
        )
        first_half = result.decisions[: n // 2]
        second_half = result.decisions[n // 2:]
        # Offloading only ever happens while the link is up.
        assert all(not d.offloaded for d in second_half)
        assert any(d.offloaded for d in first_half)
        # After the drop, the engine falls back to a local configuration whose
        # decisions may use a different (local) complex model.
        models_second = {d.model_name for d in second_half}
        assert models_second  # non-empty; all executed locally
        assert result.n_windows == n

    def test_reconnection_resumes_offloading(self, runtime, small_dataset):
        subject = small_dataset.subjects[2]
        n = subject.n_windows
        connected = np.ones(n, dtype=bool)
        connected[n // 3: 2 * n // 3] = False
        result = runtime.run_with_connection_trace(
            subject, Constraint.max_mae(6.0), connected, use_oracle_difficulty=True
        )
        last_third = result.decisions[2 * n // 3:]
        assert any(d.offloaded for d in last_third)

    def test_system_connection_state_restored(self, runtime, small_dataset):
        subject = small_dataset.subjects[1]
        before = runtime.system.ble.connected
        connected = np.zeros(subject.n_windows, dtype=bool)
        runtime.run_with_connection_trace(
            subject, Constraint.max_mae(7.0), connected, use_oracle_difficulty=True
        )
        assert runtime.system.ble.connected == before

    def test_shape_validation(self, runtime, small_dataset):
        subject = small_dataset.subjects[1]
        with pytest.raises(ValueError):
            runtime.run_with_connection_trace(
                subject, Constraint.max_mae(6.0), np.ones(3, dtype=bool)
            )


@pytest.mark.parametrize("batched", [False, True], ids=["scalar", "batched"])
class TestReselection:
    """Configuration re-selection happens exactly at status changes."""

    def test_segments_start_exactly_at_status_changes(
        self, runtime, small_dataset, batched
    ):
        subject = small_dataset.subjects[2]
        n = subject.n_windows
        connected = np.ones(n, dtype=bool)
        connected[n // 3 : n // 2] = False
        connected[2 * n // 3] = False  # single-window dropout
        result = runtime.run_with_connection_trace(
            subject, Constraint.max_mae(6.0), connected,
            use_oracle_difficulty=True, batched=batched,
        )
        expected_starts = [0] + (np.flatnonzero(np.diff(connected)) + 1).tolist()
        assert [start for start, _ in result.configuration_segments] == expected_starts
        # Equal statuses re-select the same configuration; the active one
        # at the end of the run is the last segment's.
        by_status = {}
        for start, config in result.configuration_segments:
            status = bool(connected[start])
            assert by_status.setdefault(status, config.label()) == config.label()
        assert result.configuration is result.configuration_segments[-1][1]

    def test_disconnected_segments_use_local_configuration(
        self, runtime, small_dataset, batched
    ):
        subject = small_dataset.subjects[1]
        n = subject.n_windows
        connected = np.ones(n, dtype=bool)
        connected[: n // 2] = False
        result = runtime.run_with_connection_trace(
            subject, Constraint.max_mae(6.0), connected,
            use_oracle_difficulty=True, batched=batched,
        )
        for start, config in result.configuration_segments:
            if not connected[start]:
                assert config.is_local
        assert not result.offloaded[: n // 2].any()

    def test_phone_windows_degrade_to_watch_while_disconnected(
        self, oracle_experiment, small_dataset, batched
    ):
        """With a hybrid configuration forced while the link is down, the
        complex model's windows must execute locally instead of offloading."""
        subject = small_dataset.subjects[2]
        hybrid = next(
            c for c in oracle_experiment.table.feasible(connected=True)
            if not c.is_local and 0 < c.configuration.difficulty_threshold < 9
        )
        runtime = CHRISRuntime(
            zoo=oracle_experiment.zoo,
            engine=oracle_experiment.engine,
            system=oracle_experiment.system,
        )
        runtime.system.ble.disconnect()
        try:
            result = runtime.run_with_configuration(
                subject, hybrid, use_oracle_difficulty=True, batched=batched
            )
        finally:
            runtime.system.ble.reconnect()
        assert result.offload_fraction == 0.0
        # The complex model still handles the hard windows — only its
        # execution target degraded.
        hard = subject.difficulty > hybrid.configuration.difficulty_threshold
        assert hard.any()
        assert set(result.model_names[hard]) == {hybrid.configuration.complex_model}
        assert (result.phone_compute_j == 0).all()
