"""Tests for the CHRIS decision engine."""

import pytest

from repro.core.configuration import Configuration, ExecutionMode, ProfiledConfiguration
from repro.core.decision_engine import (
    Constraint,
    ConstraintKind,
    DecisionEngine,
    NoFeasibleConfigurationError,
)
from repro.core.profiling import ConfigurationTable
from repro.hw.profiles import ExecutionTarget


def profiled(simple, complex_, threshold, mode, mae, energy_mj, offload=0.0):
    return ProfiledConfiguration(
        configuration=Configuration(simple, complex_, threshold, mode),
        mae_bpm=mae,
        watch_energy_j=energy_mj * 1e-3,
        phone_energy_j=0.0,
        mean_latency_s=0.01,
        offload_fraction=offload,
    )


@pytest.fixture()
def table() -> ConfigurationTable:
    """A hand-built table with known local/hybrid trade-offs."""
    return ConfigurationTable([
        profiled("AT", "TimePPG-Small", 9, ExecutionMode.LOCAL, mae=10.9, energy_mj=0.23),
        profiled("AT", "TimePPG-Small", 5, ExecutionMode.LOCAL, mae=8.0, energy_mj=0.5),
        profiled("AT", "TimePPG-Big", 8, ExecutionMode.HYBRID, mae=7.0, energy_mj=0.29, offload=0.11),
        profiled("AT", "TimePPG-Big", 6, ExecutionMode.HYBRID, mae=5.3, energy_mj=0.40, offload=0.33),
        profiled("AT", "TimePPG-Big", 0, ExecutionMode.HYBRID, mae=4.9, energy_mj=0.72, offload=1.0),
        profiled("TimePPG-Small", "TimePPG-Big", 0, ExecutionMode.LOCAL, mae=4.87, energy_mj=41.1),
    ])


class TestConstraint:
    def test_constructors(self):
        mae = Constraint.max_mae(5.6)
        assert mae.kind is ConstraintKind.MAX_MAE
        assert mae.value == 5.6
        energy = Constraint.max_energy_mj(0.5)
        assert energy.kind is ConstraintKind.MAX_ENERGY
        assert energy.value == pytest.approx(0.5e-3)

    def test_positive_value_required(self):
        with pytest.raises(ValueError):
            Constraint.max_mae(0.0)
        with pytest.raises(ValueError):
            Constraint.max_energy_mj(-1.0)


class TestConfigurationSelection:
    def test_mae_constraint_picks_lowest_energy_admissible(self, table):
        engine = DecisionEngine(table, use_pareto_only=False)
        selected = engine.select_configuration(Constraint.max_mae(5.6), connected=True)
        assert selected.mae_bpm == pytest.approx(5.3)
        assert selected.watch_energy_mj == pytest.approx(0.40)

    def test_energy_constraint_picks_best_mae_admissible(self, table):
        engine = DecisionEngine(table, use_pareto_only=False)
        selected = engine.select_configuration(Constraint.max_energy_mj(0.45), connected=True)
        assert selected.mae_bpm == pytest.approx(5.3)

    def test_connection_loss_excludes_hybrid(self, table):
        engine = DecisionEngine(table, use_pareto_only=False)
        selected = engine.select_configuration(Constraint.max_mae(9.0), connected=False)
        assert selected.is_local
        assert selected.mae_bpm == pytest.approx(8.0)

    def test_tight_mae_only_reachable_with_expensive_local_config(self, table):
        engine = DecisionEngine(table, use_pareto_only=False)
        selected = engine.select_configuration(Constraint.max_mae(4.87), connected=False)
        assert selected.watch_energy_mj == pytest.approx(41.1)

    def test_unreachable_constraint_raises(self, table):
        engine = DecisionEngine(table, use_pareto_only=False)
        with pytest.raises(NoFeasibleConfigurationError):
            engine.select_configuration(Constraint.max_mae(1.0))
        with pytest.raises(NoFeasibleConfigurationError):
            engine.select_configuration(Constraint.max_energy_mj(0.01))

    def test_closest_configuration_fallback(self, table):
        engine = DecisionEngine(table, use_pareto_only=False)
        best_effort = engine.closest_configuration(Constraint.max_mae(1.0))
        assert best_effort.mae_bpm == pytest.approx(4.87)
        best_effort = engine.closest_configuration(Constraint.max_energy_mj(0.01))
        assert best_effort.watch_energy_mj == pytest.approx(0.23)

    def test_select_or_closest_never_raises(self, table):
        engine = DecisionEngine(table, use_pareto_only=False)
        assert engine.select_or_closest(Constraint.max_mae(1.0)) is not None
        assert engine.select_or_closest(Constraint.max_mae(5.6)).mae_bpm <= 5.6

    def test_pareto_only_engine_ignores_dominated_configs(self, table):
        # The (8.0 BPM, 0.5 mJ) local config is dominated by the hybrid
        # (7.0, 0.29); a Pareto-only engine should never pick it while connected.
        engine = DecisionEngine(table, use_pareto_only=True)
        selected = engine.select_configuration(Constraint.max_mae(8.5), connected=True)
        assert selected.mae_bpm == pytest.approx(7.0)


class TestModelSelection:
    def test_per_window_dispatch(self, table):
        engine = DecisionEngine(table)
        config = table.feasible(True)[3]
        simple_name = config.configuration.simple_model
        complex_name = config.configuration.complex_model
        threshold = config.configuration.difficulty_threshold
        model, target = engine.select_model(config, threshold)
        assert model == simple_name
        assert target is ExecutionTarget.WATCH
        model, target = engine.select_model(config, min(9, threshold + 1))
        if threshold < 9:
            assert model == complex_name
