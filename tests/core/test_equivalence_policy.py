"""Unit tests for the runtime's explicit equivalence policy.

The property suite (``test_fleet_properties.py``) pins the tolerance
contract across randomized fleet shapes; these tests pin the mechanics
deterministically: policy validation, the dispatch shape (one fused
cross-subject ``predict`` call under tolerance vs one per-subject batch
under bitwise), bit-identity of the default policy with a real TimePPG
network in the zoo, and the documented atol/rtol bound itself.
"""

import numpy as np
import pytest

from repro.core.decision_engine import Constraint
from repro.core.runtime import (
    CHRISRuntime,
    EQUIVALENCE_ATOL,
    EQUIVALENCE_POLICIES,
    EQUIVALENCE_RTOL,
)

from tests.core.test_fleet_properties import (
    TINY_TIMEPPG_CONFIG,
    _experiment,
    assert_results_equivalent,
    make_subject,
    tolerance_fused_models,
)
from tests.core.test_runtime_batched import assert_results_identical

CONSTRAINT = Constraint.max_mae(6.0)


def timeppg_runtime(equivalence: str) -> CHRISRuntime:
    """A runtime whose TimePPG-Big entry is a real (tiny, frozen) TCN."""
    import copy

    from repro.models.timeppg import TimePPGPredictor

    experiment = _experiment()
    zoo = copy.deepcopy(experiment.zoo)
    zoo.entry("TimePPG-Big").predictor = TimePPGPredictor(
        TINY_TIMEPPG_CONFIG, seed=3
    ).freeze()
    return CHRISRuntime(
        zoo=zoo,
        engine=experiment.engine,
        system=experiment.system,
        equivalence=equivalence,
    )


def small_fleet(n_subjects: int = 4, n_windows: int = 30):
    return [
        make_subject(f"eq-{i:02d}", n_windows, seed=100 + i)
        for i in range(n_subjects)
    ]


def count_predict_calls(runtime: CHRISRuntime, name: str) -> list:
    """Instrument a zoo member's batch ``predict`` with a call recorder."""
    predictor = runtime.zoo.entry(name).predictor
    original = predictor.predict
    calls: list[int] = []

    def counting(ppg_windows, accel_windows=None, **context):
        calls.append(int(np.asarray(ppg_windows).shape[0]))
        return original(ppg_windows, accel_windows, **context)

    predictor.predict = counting
    return calls


class TestPolicyValidation:
    def test_invalid_policy_rejected(self):
        experiment = _experiment()
        with pytest.raises(ValueError, match="equivalence"):
            CHRISRuntime(
                zoo=experiment.zoo,
                engine=experiment.engine,
                equivalence="approximately",
            )

    def test_policies_enumerated(self):
        assert EQUIVALENCE_POLICIES == ("bitwise", "tolerance")

    def test_experiment_runtime_passthrough(self):
        runtime = _experiment().runtime(equivalence="tolerance")
        assert runtime.equivalence == "tolerance"
        assert _experiment().runtime().equivalence == "bitwise"


class TestDispatchShape:
    def test_bitwise_keeps_per_subject_timeppg_batches(self):
        runtime = timeppg_runtime("bitwise")
        subjects = small_fleet()
        calls = count_predict_calls(runtime, "TimePPG-Big")
        fleet = runtime.run_many(subjects, CONSTRAINT, use_oracle_difficulty=True)
        routed = [
            int(np.count_nonzero(r.model_names.astype(str) == "TimePPG-Big"))
            for r in fleet.results.values()
        ]
        assert sum(routed) > 0, "the fleet must route windows to the TCN"
        # One forward batch per subject that received windows: chunk
        # boundaries fall exactly where sequential replay puts them.
        assert calls == [n for n in routed if n]

    def test_tolerance_fuses_one_cross_subject_batch(self):
        runtime = timeppg_runtime("tolerance")
        subjects = small_fleet()
        calls = count_predict_calls(runtime, "TimePPG-Big")
        fleet = runtime.run_many(subjects, CONSTRAINT, use_oracle_difficulty=True)
        total = sum(
            int(np.count_nonzero(r.model_names.astype(str) == "TimePPG-Big"))
            for r in fleet.results.values()
        )
        assert total > 0
        assert calls == [total], "tolerance must fuse the whole fleet into one call"


class TestResults:
    def test_bitwise_mega_is_bit_identical_with_real_timeppg(self):
        subjects = small_fleet()
        sequential = timeppg_runtime("bitwise").run_many(
            subjects, CONSTRAINT, use_oracle_difficulty=True, mega_batched=False
        )
        mega = timeppg_runtime("bitwise").run_many(
            subjects, CONSTRAINT, use_oracle_difficulty=True, mega_batched=True
        )
        for sid in sequential.subject_ids:
            assert_results_identical(sequential.results[sid], mega.results[sid])

    def test_tolerance_mega_within_documented_bounds(self):
        subjects = small_fleet()
        runtime = timeppg_runtime("tolerance")
        sequential = timeppg_runtime("tolerance").run_many(
            subjects, CONSTRAINT, use_oracle_difficulty=True, mega_batched=False
        )
        mega = runtime.run_many(
            subjects, CONSTRAINT, use_oracle_difficulty=True, mega_batched=True
        )
        fused = tolerance_fused_models(runtime)
        assert "TimePPG-Big" in fused
        for sid in sequential.subject_ids:
            assert_results_equivalent(sequential.results[sid], mega.results[sid], fused)

    def test_documented_bounds_are_tight_enough_to_catch_divergence(self):
        """A whole-BPM prediction shift must violate the documented bound."""
        reference = np.array([70.0, 120.0])
        shifted = reference + 1.0
        assert not np.allclose(
            shifted, reference, atol=EQUIVALENCE_ATOL, rtol=EQUIVALENCE_RTOL
        )
