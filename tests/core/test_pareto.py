"""Tests for the Pareto-front utilities."""

import pytest

from repro.core.configuration import Configuration, ExecutionMode, ProfiledConfiguration
from repro.core.pareto import is_dominated, pareto_front, pareto_indices


def profiled(mae: float, energy_mj: float, threshold: int = 5,
             mode: ExecutionMode = ExecutionMode.LOCAL) -> ProfiledConfiguration:
    return ProfiledConfiguration(
        configuration=Configuration("AT", "TimePPG-Big", threshold, mode),
        mae_bpm=mae,
        watch_energy_j=energy_mj * 1e-3,
        phone_energy_j=0.0,
        mean_latency_s=0.01,
        offload_fraction=0.0,
    )


class TestIsDominated:
    def test_strict_domination(self):
        assert is_dominated((5.0, 5.0), [(4.0, 4.0)])
        assert not is_dominated((4.0, 4.0), [(5.0, 5.0)])

    def test_partial_improvement_dominates(self):
        assert is_dominated((5.0, 5.0), [(5.0, 4.0)])
        assert is_dominated((5.0, 5.0), [(4.0, 5.0)])

    def test_identical_point_does_not_dominate(self):
        assert not is_dominated((5.0, 5.0), [(5.0, 5.0)])

    def test_tradeoff_points_do_not_dominate(self):
        assert not is_dominated((5.0, 3.0), [(3.0, 5.0)])


class TestParetoIndices:
    def test_simple_front(self):
        points = [(1.0, 10.0), (2.0, 5.0), (3.0, 1.0), (3.0, 8.0), (5.0, 5.0)]
        front = pareto_indices(points)
        assert set(front) == {0, 1, 2}

    def test_all_on_front(self):
        points = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        assert pareto_indices(points) == [0, 1, 2]

    def test_single_point(self):
        assert pareto_indices([(1.0, 1.0)]) == [0]

    def test_empty(self):
        assert pareto_indices([]) == []

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            pareto_indices([(1.0, 2.0, 3.0)])


class TestParetoFront:
    def test_front_sorted_by_energy(self):
        configs = [
            profiled(10.0, 0.2, threshold=9),
            profiled(5.0, 0.4, threshold=6),
            profiled(4.9, 40.0, threshold=0),
            profiled(7.0, 0.5, threshold=7),   # dominated by the 5.0/0.4 point
        ]
        front = pareto_front(configs)
        energies = [c.watch_energy_mj for c in front]
        assert energies == sorted(energies)
        assert all(c.mae_bpm != 7.0 for c in front)
        assert len(front) == 3

    def test_duplicates_collapsed(self):
        configs = [profiled(5.0, 1.0, threshold=3), profiled(5.0, 1.0, threshold=4)]
        assert len(pareto_front(configs)) == 1

    def test_empty_input(self):
        assert pareto_front([]) == []
