"""Durability-layer tests: staged results, shard journal, forced failures.

Every recovery path of the crash-safe fleet gets a *forced-failure* test
here: the fault actually happens (via :mod:`repro.core.faults`) and the
test asserts the recovery — retried shards, quarantined subjects,
rebuilt pools, discarded stale journals, re-executed corrupt shards —
always against the bit-identity contract with an uninterrupted run.
"""

import io

import numpy as np
import pytest

from repro.core import faults
from repro.core.checkpoint import (
    FleetJournal,
    RunStager,
    ShardStatus,
    StagedShardError,
    atomic_write_bytes,
)
from repro.core.fleet import FleetExecutor
from repro.core.runtime import RunResult, _NPZ_ARRAY_FIELDS
from repro.models import MODEL_REGISTRY

from tests.core.test_fleet import CONSTRAINT, assert_fleets_identical, make_runtime
from tests.core.test_runtime_batched import assert_results_identical


@pytest.fixture(scope="module")
def reference_fleet(calibrated_experiment, small_dataset):
    """Uninterrupted sequential reference every recovery must reproduce."""
    return make_runtime(calibrated_experiment, mega_batched=False).run_many(
        small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
    )


def checkpointed_executor(experiment, directory, **kwargs):
    """A 4-shard (one subject per shard) checkpointed executor."""
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("shards_per_worker", 2)
    return FleetExecutor(
        make_runtime(experiment, mega_batched=True),
        checkpoint_dir=directory,
        retry_backoff_s=0.0,
        **kwargs,
    )


def round_trip(result: RunResult) -> RunResult:
    buffer = io.BytesIO()
    result.to_npz(buffer)
    buffer.seek(0)
    return RunResult.from_npz(buffer)


def assert_bit_identical(a: RunResult, b: RunResult) -> None:
    """Stricter than value equality: every array survives bit-for-bit."""
    for name in _NPZ_ARRAY_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        assert left.tobytes() == right.tobytes(), name
    np.testing.assert_array_equal(a.model_names.astype(str), b.model_names.astype(str))
    assert a.configuration == b.configuration
    assert a.configuration_segments == b.configuration_segments


# ------------------------------------------------------ RunResult persistence
class TestRunResultNpz:
    @pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
    def test_every_registry_model_round_trips(self, calibrated_experiment, model_name):
        """A result routed entirely through each zoo model is bit-stable."""
        configuration = calibrated_experiment.table.configurations[0]
        n = 7
        result = RunResult(
            configuration=configuration,
            window_index=np.arange(n, dtype=int),
            predicted_difficulty=np.array([0, 1] * 3 + [0], dtype=int),
            true_difficulty=np.array([1, 0] * 3 + [1], dtype=int),
            model_names=np.array([model_name] * n, dtype=object),
            offloaded=np.array([True, False] * 3 + [True]),
            predicted_hr=np.linspace(55.0, 180.0, n),
            true_hr=np.linspace(60.0, 175.0, n),
            watch_compute_j=np.full(n, 1e-4),
            watch_radio_j=np.zeros(n),
            watch_idle_j=np.full(n, 2.5e-5),
            phone_compute_j=np.full(n, 3e-3),
            latency_s=np.full(n, 0.21),
            configuration_segments=[(0, configuration)],
        )
        assert_bit_identical(result, round_trip(result))

    def test_adversarial_floats_survive_bitwise(self, calibrated_experiment):
        """-0.0, denormals, inf and NaN payloads all round-trip exactly."""
        configuration = calibrated_experiment.table.configurations[0]
        tricky = np.array([-0.0, 5e-324, np.inf, -np.inf, np.nan, 1.0 + 2**-52])
        n = tricky.size
        names = sorted(MODEL_REGISTRY)
        result = RunResult(
            configuration=configuration,
            window_index=np.arange(n, dtype=int),
            predicted_difficulty=np.zeros(n, dtype=int),
            true_difficulty=np.ones(n, dtype=int),
            model_names=np.array([names[i % len(names)] for i in range(n)], dtype=object),
            offloaded=np.zeros(n, dtype=bool),
            predicted_hr=tricky,
            true_hr=tricky[::-1].copy(),
            watch_compute_j=tricky,
            watch_radio_j=tricky,
            watch_idle_j=tricky,
            phone_compute_j=tricky,
            latency_s=tricky,
        )
        assert_bit_identical(result, round_trip(result))

    def test_executed_run_round_trips(self, reference_fleet):
        for result in reference_fleet.results.values():
            reloaded = round_trip(result)
            assert_bit_identical(result, reloaded)
            assert_results_identical(result, reloaded)

    def test_lazy_decisions_rebuilt_not_serialized(self, reference_fleet):
        result = next(iter(reference_fleet.results.values()))
        _ = result.decisions  # materialize the cache before dumping
        reloaded = round_trip(result)
        assert reloaded._decisions is None
        assert reloaded.decisions == result.decisions

    def test_empty_result_round_trips(self, calibrated_experiment):
        configuration = calibrated_experiment.table.configurations[0]
        result = RunResult(configuration=configuration)
        reloaded = round_trip(result)
        assert_bit_identical(result, reloaded)
        assert reloaded.n_windows == 0

    def test_float32_predictions_round_trip_bit_identical(self, calibrated_experiment):
        """Archives preserve the float32 engine's dtype and payload exactly.

        ``to_npz`` stores the per-window arrays verbatim, so a float32
        ``predicted_hr`` (including -0.0, float32 denormals, infinities
        and NaN) must reload as float32 with identical bytes — the
        invariant staged-checkpoint replay of float32 runs rests on.
        """
        configuration = calibrated_experiment.table.configurations[0]
        tricky = np.array(
            [-0.0, 1e-45, np.inf, -np.inf, np.nan, 1.0 + 2**-23], dtype=np.float32
        )
        n = tricky.size
        names = sorted(MODEL_REGISTRY)
        result = RunResult(
            configuration=configuration,
            window_index=np.arange(n, dtype=int),
            predicted_difficulty=np.zeros(n, dtype=int),
            true_difficulty=np.ones(n, dtype=int),
            model_names=np.array([names[i % len(names)] for i in range(n)], dtype=object),
            offloaded=np.zeros(n, dtype=bool),
            predicted_hr=tricky,
            true_hr=np.linspace(60.0, 175.0, n),
            watch_compute_j=np.full(n, 1e-4),
            watch_radio_j=np.zeros(n),
            watch_idle_j=np.full(n, 2.5e-5),
            phone_compute_j=np.full(n, 3e-3),
            latency_s=np.full(n, 0.21),
        )
        reloaded = round_trip(result)
        assert reloaded.predicted_hr.dtype == np.float32
        assert_bit_identical(result, reloaded)

    def test_executed_float32_run_round_trips(self, calibrated_experiment, small_dataset):
        """An actually executed float32 run survives the archive bit-for-bit."""
        import copy

        from repro.core.runtime import CHRISRuntime

        runtime = CHRISRuntime(
            zoo=copy.deepcopy(calibrated_experiment.zoo),
            engine=calibrated_experiment.engine,
            system=calibrated_experiment.system,
            dtype="float32",
        )
        result = runtime.run(small_dataset.subjects[0], CONSTRAINT)
        assert result.predicted_hr.dtype == np.float32
        reloaded = round_trip(result)
        assert_bit_identical(result, reloaded)
        assert_results_identical(result, reloaded)


# ------------------------------------------------------------- atomic writes
class TestAtomicWrite:
    def test_writes_and_overwrites_without_temp_residue(self, tmp_path):
        path = tmp_path / "manifest.json"
        atomic_write_bytes(path, b"first")
        assert path.read_bytes() == b"first"
        atomic_write_bytes(path, b"second")
        assert path.read_bytes() == b"second"
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]


# ------------------------------------------------------------------- stager
class TestRunStager:
    @pytest.fixture()
    def records(self, reference_fleet):
        return list(reference_fleet.results.items())

    def test_stage_and_load_round_trip(self, tmp_path, records):
        stager = RunStager(tmp_path)
        stager.stage_shard(0, records[:2])
        stager.stage_shard(3, records[2:])
        assert stager.staged_shards() == [0, 3]
        for shard, staged in ((0, records[:2]), (3, records[2:])):
            loaded = stager.load_shard(shard)
            assert [sid for sid, _ in loaded] == [sid for sid, _ in staged]
            for (_, expected), (_, actual) in zip(staged, loaded):
                assert_bit_identical(expected, actual)

    def test_reload_from_disk_sees_staged_shards(self, tmp_path, records):
        RunStager(tmp_path).stage_shard(1, records[:1])
        fresh = RunStager(tmp_path)
        assert fresh.staged_shards() == [1]
        assert_bit_identical(records[0][1], fresh.load_shard(1)[0][1])

    def test_unstaged_shard_raises(self, tmp_path):
        with pytest.raises(StagedShardError, match="never staged"):
            RunStager(tmp_path).load_shard(5)

    @pytest.mark.parametrize("mode", ["truncate", "flip"])
    def test_corruption_fails_checksum(self, tmp_path, records, mode):
        stager = RunStager(tmp_path)
        stager.stage_shard(0, records[:2])
        faults.corrupt_staged_shard(tmp_path, 0, mode=mode)
        with pytest.raises(StagedShardError, match="checksum"):
            stager.load_shard(0)

    def test_missing_file_raises(self, tmp_path, records):
        stager = RunStager(tmp_path)
        path = stager.stage_shard(0, records[:1])
        path.unlink()
        with pytest.raises(StagedShardError, match="unreadable"):
            stager.load_shard(0)

    def test_discard_and_reset(self, tmp_path, records):
        stager = RunStager(tmp_path)
        stager.stage_shard(0, records[:1])
        stager.stage_shard(1, records[1:2])
        stager.discard_shard(0)
        assert stager.staged_shards() == [1]
        assert not stager.shard_path(0).exists()
        stager.reset()
        assert stager.staged_shards() == []
        assert not stager.shard_path(1).exists()


# ------------------------------------------------------------------ journal
class TestFleetJournal:
    PAYLOAD = {"fleet": "alpha", "constraint": "max_mae(6.0)"}
    SHARDS = [["s0", "s1"], ["s2"]]

    def test_fresh_run_starts_pending(self, tmp_path):
        journal = FleetJournal(tmp_path)
        assert journal.open_run(self.PAYLOAD, self.SHARDS, "{}") is False
        assert journal.statuses() == [ShardStatus.PENDING, ShardStatus.PENDING]
        assert journal.subject_ids(0) == ["s0", "s1"]
        assert journal.attempts(0) == 0

    def test_matching_fingerprint_resumes_with_state(self, tmp_path):
        journal = FleetJournal(tmp_path)
        journal.open_run(self.PAYLOAD, self.SHARDS, "{}")
        journal.mark(0, ShardStatus.RUNNING, attempt=True)
        journal.mark(0, ShardStatus.DONE)
        journal.mark(1, ShardStatus.FAILED, error="boom", attempt=True)
        resumed = FleetJournal(tmp_path)
        assert resumed.open_run(self.PAYLOAD, self.SHARDS, "{}") is True
        assert resumed.statuses() == [ShardStatus.DONE, ShardStatus.FAILED]
        assert resumed.attempts(0) == 1
        assert resumed.shards_with(ShardStatus.FAILED) == [1]

    def test_foreign_fingerprint_starts_clean(self, tmp_path):
        journal = FleetJournal(tmp_path)
        journal.open_run(self.PAYLOAD, self.SHARDS, "{}")
        journal.mark(0, ShardStatus.DONE)
        fresh = FleetJournal(tmp_path)
        assert fresh.open_run({"fleet": "beta"}, self.SHARDS, "{}") is False
        assert fresh.statuses() == [ShardStatus.PENDING, ShardStatus.PENDING]

    def test_changed_shard_layout_starts_clean(self, tmp_path):
        journal = FleetJournal(tmp_path)
        journal.open_run(self.PAYLOAD, self.SHARDS, "{}")
        journal.mark(1, ShardStatus.DONE)
        fresh = FleetJournal(tmp_path)
        assert fresh.open_run(self.PAYLOAD, [["s0", "s1", "s2"]], "{}") is False
        assert fresh.statuses() == [ShardStatus.PENDING]

    def test_queries_require_open_run(self, tmp_path):
        with pytest.raises(RuntimeError, match="open_run"):
            FleetJournal(tmp_path).status(0)


# ------------------------------------------------------------- fault plans
class TestFaultPlan:
    def test_arm_fire_consumes_exactly_once(self, tmp_path):
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("site", times=2)
        assert plan.armed() == 2
        with pytest.raises(faults.InjectedFault):
            plan.fire("site")
        assert plan.armed("site") == 1
        with pytest.raises(faults.InjectedFault):
            plan.fire("site")
        plan.fire("site")  # exhausted: no-op
        assert plan.armed() == 0

    def test_shard_scoped_tokens_only_match_their_shard(self, tmp_path):
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("site", shard=2)
        plan.fire("site", shard=1)
        plan.fire("site")  # shard-scoped token never matches a bare firing
        assert plan.armed() == 1
        with pytest.raises(faults.InjectedFault) as excinfo:
            plan.fire("site", shard=2)
        assert excinfo.value.shard == 2
        assert plan.armed() == 0

    def test_inactive_fire_is_a_noop(self, tmp_path):
        faults.deactivate()
        faults.fire("site")  # no active plan: must not raise
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("site")
        with faults.injected_faults(plan):
            pass
        faults.fire("site")  # deactivated on context exit
        assert plan.armed() == 1

    def test_arm_validation(self, tmp_path):
        plan = faults.FaultPlan(tmp_path / "plan")
        with pytest.raises(ValueError):
            plan.arm("site", times=0)
        with pytest.raises(ValueError):
            plan.arm("site", kind="segfault")
        with pytest.raises(ValueError):
            plan.arm("bad@site")


# --------------------------------------------- checkpointed fleet execution
class TestCheckpointedExecution:
    def test_checkpointed_run_matches_reference(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path
    ):
        executor = checkpointed_executor(calibrated_experiment, tmp_path / "ckpt")
        fleet = executor.run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert_fleets_identical(reference_fleet, fleet)
        assert RunStager(tmp_path / "ckpt").staged_shards() == [0, 1, 2, 3]

    def test_interrupted_run_resumes_bit_identically(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path
    ):
        directory = tmp_path / "ckpt"
        first = checkpointed_executor(calibrated_experiment, directory)
        stream = first.iter_runs(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        next(stream)
        stream.close()  # simulated crash after at least one shard committed
        staged_before = RunStager(directory).staged_shards()
        assert staged_before  # the interrupted run left durable progress

        resumed = checkpointed_executor(calibrated_experiment, directory)
        fleet = resumed.run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert_fleets_identical(reference_fleet, fleet)

    def test_completed_run_replays_without_re_execution(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path
    ):
        directory = tmp_path / "ckpt"
        checkpointed_executor(calibrated_experiment, directory).run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        # Arm a fault at the shard-execution site: if the resumed run
        # (everything DONE) executed any shard, it would trip and fail.
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("fleet.shard", times=1)
        with faults.injected_faults(plan):
            fleet = checkpointed_executor(calibrated_experiment, directory).run_fleet(
                small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
            )
        assert plan.armed() == 1  # nothing executed: all four shards loaded
        assert_fleets_identical(reference_fleet, fleet)

    @pytest.mark.parametrize("mode", ["truncate", "flip"])
    def test_corrupt_staged_shard_is_re_executed(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path, mode
    ):
        directory = tmp_path / "ckpt"
        checkpointed_executor(calibrated_experiment, directory).run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        faults.corrupt_staged_shard(directory, 2, mode=mode)
        fleet = checkpointed_executor(calibrated_experiment, directory).run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert_fleets_identical(reference_fleet, fleet)
        # The re-executed shard was staged afresh and verifies again.
        reloaded = RunStager(directory).load_shard(2)
        sid = reloaded[0][0]
        assert_bit_identical(reference_fleet.results[sid], reloaded[0][1])

    def test_stale_journal_is_discarded_and_rerun(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path
    ):
        directory = tmp_path / "ckpt"
        checkpointed_executor(calibrated_experiment, directory).run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        faults.stale_journal(directory)
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("fleet.shard", times=1)
        with faults.injected_faults(plan):
            # A stale journal must force re-execution — the armed fault
            # fires on the first shard, proving nothing was trusted, and
            # the retry path absorbs it.
            fleet = checkpointed_executor(calibrated_experiment, directory).run_fleet(
                small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
            )
        assert plan.armed() == 0
        assert_fleets_identical(reference_fleet, fleet)

    def test_crash_during_staging_resumes_cleanly(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path
    ):
        directory = tmp_path / "ckpt"
        executor = checkpointed_executor(calibrated_experiment, directory, max_workers=1)
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("stager.write", times=1)
        with faults.injected_faults(plan):
            with pytest.raises(faults.InjectedFault):
                executor.run_fleet(
                    small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
                )
        fleet = checkpointed_executor(calibrated_experiment, directory).run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert_fleets_identical(reference_fleet, fleet)

    def test_resume_with_zero_window_subjects(
        self, calibrated_experiment, small_dataset, tmp_path
    ):
        from tests.core.test_fleet import TestZeroWindowSubjects

        template = small_dataset.subjects[0]
        fleet_subjects = [
            TestZeroWindowSubjects.empty_subject(template, "empty-first"),
            small_dataset.subjects[0],
            TestZeroWindowSubjects.empty_subject(template, "empty-mid"),
            small_dataset.subjects[1],
        ]
        reference = make_runtime(calibrated_experiment, mega_batched=False).run_many(
            fleet_subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        directory = tmp_path / "ckpt"
        stream = checkpointed_executor(calibrated_experiment, directory).iter_runs(
            fleet_subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        next(stream)
        stream.close()
        resumed = checkpointed_executor(calibrated_experiment, directory).run_fleet(
            fleet_subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert_fleets_identical(reference, resumed)
        assert resumed.results["empty-first"].n_windows == 0
        assert resumed.results["empty-mid"].n_windows == 0


# ------------------------------------------------------ retry and quarantine
class TestRetryAndQuarantine:
    def test_transient_exception_is_retried_to_identity(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path
    ):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=2,
            shards_per_worker=2,
            retry_backoff_s=0.0,
        )
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("fleet.shard", shard=1, times=1)
        with faults.injected_faults(plan):
            fleet = executor.run_fleet(
                small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
            )
        assert plan.armed() == 0
        assert fleet.n_failed == 0
        assert_fleets_identical(reference_fleet, fleet)

    def test_exhausted_retries_quarantine_only_that_shard(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path
    ):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=2,
            shards_per_worker=2,
            max_retries=1,
            retry_backoff_s=0.0,
        )
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("fleet.shard", shard=1, times=2)  # every attempt fails
        with faults.injected_faults(plan):
            fleet = executor.run_fleet(
                small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
            )
        quarantined = small_dataset.subjects[1].subject_id
        assert fleet.failed_subject_ids == [quarantined]
        assert "InjectedFault" in fleet.failed[quarantined]
        # Every healthy subject still matches the reference bit-for-bit.
        for subject in small_dataset.subjects:
            sid = subject.subject_id
            if sid != quarantined:
                assert_results_identical(
                    reference_fleet.results[sid], fleet.results[sid]
                )

    def test_worker_death_rebuilds_pool_and_retries(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path
    ):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=2,
            shards_per_worker=2,
            retry_backoff_s=0.0,
        )
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("fleet.shard", shard=0, times=1, kind="exit")
        with faults.injected_faults(plan):
            fleet = executor.run_fleet(
                small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
            )
        assert plan.armed() == 0
        assert fleet.n_failed == 0
        assert_fleets_identical(reference_fleet, fleet)

    def test_repeated_worker_death_quarantines_with_cause(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path
    ):
        """With retries exhausted, a worker death quarantines — not raises.

        A dying worker breaks every in-flight future indistinguishably
        (the pool cannot say which task killed it), so with
        ``max_retries=0`` the collateral shards may be quarantined too;
        the contract is degrade-don't-die plus an attributable cause.
        """
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=2,
            shards_per_worker=2,
            max_retries=0,
            retry_backoff_s=0.0,
        )
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("fleet.shard", shard=0, times=1, kind="exit")
        with faults.injected_faults(plan):
            fleet = executor.run_fleet(
                small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
            )
        doomed = small_dataset.subjects[0].subject_id
        assert doomed in fleet.failed_subject_ids
        assert all("BrokenProcessPool" in err for err in fleet.failed.values())
        for sid, result in fleet.results.items():
            assert_results_identical(reference_fleet.results[sid], result)

    def test_quarantine_with_checkpoint_retries_on_next_run(
        self, calibrated_experiment, small_dataset, reference_fleet, tmp_path
    ):
        """A quarantined (FAILED) shard is re-executed by the next run."""
        directory = tmp_path / "ckpt"
        executor = checkpointed_executor(
            calibrated_experiment, directory, max_retries=0
        )
        plan = faults.FaultPlan(tmp_path / "plan")
        plan.arm("fleet.shard", shard=3, times=1)
        with faults.injected_faults(plan):
            fleet = executor.run_fleet(
                small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
            )
        assert fleet.n_failed == 1
        # A fresh executor over the same directory retries the FAILED
        # shard (now fault-free) and completes the fleet.
        healed = checkpointed_executor(calibrated_experiment, directory).run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert healed.n_failed == 0
        assert_fleets_identical(reference_fleet, healed)

    def test_retry_validation(self, calibrated_experiment):
        runtime = make_runtime(calibrated_experiment, mega_batched=True)
        with pytest.raises(ValueError):
            FleetExecutor(runtime, max_retries=-1)
        with pytest.raises(ValueError):
            FleetExecutor(runtime, retry_backoff_s=-0.1)
