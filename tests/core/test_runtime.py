"""Tests for the CHRIS runtime simulator."""

import numpy as np
import pytest

from repro.core.decision_engine import Constraint
from repro.core.runtime import CHRISRuntime
from repro.hw.profiles import ExecutionTarget
from repro.models.registry import PAPER_MODEL_STATS


@pytest.fixture()
def runtime(calibrated_experiment):
    return CHRISRuntime(
        zoo=calibrated_experiment.zoo,
        engine=calibrated_experiment.engine,
        system=calibrated_experiment.system,
        activity_classifier=None,  # oracle difficulty through windows.difficulty
    )


class TestRun:
    def test_run_produces_one_decision_per_window(self, runtime, small_dataset):
        subject = small_dataset.subjects[2]
        result = runtime.run(subject, Constraint.max_mae(6.0), use_oracle_difficulty=True)
        assert result.n_windows == subject.n_windows
        assert len(result.decisions) == subject.n_windows
        assert np.isfinite(result.mae_bpm)
        assert result.mean_watch_energy_j > 0

    def test_run_respects_constraint_approximately(self, runtime, small_dataset):
        """The constraint is soft but on data distributed like the profiling
        set the achieved MAE should stay near the bound."""
        subject = small_dataset.subjects[3]
        result = runtime.run(subject, Constraint.max_mae(6.5), use_oracle_difficulty=True)
        assert result.mae_bpm < 6.5 * 1.35

    def test_offload_fraction_matches_threshold(self, runtime, small_dataset):
        subject = small_dataset.subjects[2]
        result = runtime.run(subject, Constraint.max_mae(6.0), use_oracle_difficulty=True)
        config = result.configuration.configuration
        if config.mode.value == "hybrid":
            expected = np.mean(subject.difficulty > config.difficulty_threshold)
            assert result.offload_fraction == pytest.approx(expected, abs=0.02)
        else:
            assert result.offload_fraction == 0.0

    def test_energy_cheaper_than_small_local_baseline(self, runtime, small_dataset,
                                                      calibrated_experiment):
        subject = small_dataset.subjects[2]
        result = runtime.run(subject, Constraint.max_mae(6.0), use_oracle_difficulty=True)
        small_local = calibrated_experiment.baseline("TimePPG-Small", ExecutionTarget.WATCH)
        assert result.mean_watch_energy_j < small_local.watch_energy_j

    def test_run_with_explicit_configuration(self, runtime, small_dataset,
                                             calibrated_experiment):
        subject = small_dataset.subjects[2]
        config = calibrated_experiment.table.pareto()[0]
        result = runtime.run_with_configuration(subject, config, use_oracle_difficulty=True)
        assert result.configuration is config

    def test_per_model_counts_sum_to_windows(self, runtime, small_dataset):
        subject = small_dataset.subjects[2]
        result = runtime.run(subject, Constraint.max_mae(6.0), use_oracle_difficulty=True)
        assert sum(result.per_model_counts().values()) == result.n_windows

    def test_summary_mentions_configuration_and_mae(self, runtime, small_dataset):
        subject = small_dataset.subjects[2]
        result = runtime.run(subject, Constraint.max_mae(6.0), use_oracle_difficulty=True)
        summary = result.summary()
        assert "MAE" in summary
        assert result.configuration.configuration.simple_model in summary

    def test_disconnected_system_never_offloads(self, calibrated_experiment, small_dataset):
        runtime = CHRISRuntime(
            zoo=calibrated_experiment.zoo,
            engine=calibrated_experiment.engine,
            system=calibrated_experiment.system,
        )
        calibrated_experiment.system.ble.disconnect()
        try:
            subject = small_dataset.subjects[1]
            result = runtime.run(subject, Constraint.max_mae(6.0), use_oracle_difficulty=True)
            assert result.offload_fraction == 0.0
            assert result.configuration.is_local
        finally:
            calibrated_experiment.system.ble.reconnect()

    def test_rf_difficulty_decisions(self, calibrated_experiment, small_dataset,
                                     trained_activity_classifier):
        runtime = CHRISRuntime(
            zoo=calibrated_experiment.zoo,
            engine=calibrated_experiment.engine,
            system=calibrated_experiment.system,
            activity_classifier=trained_activity_classifier,
        )
        subject = small_dataset.subjects[2]
        oracle = runtime.run(subject, Constraint.max_mae(6.0), use_oracle_difficulty=True)
        with_rf = runtime.run(subject, Constraint.max_mae(6.0), use_oracle_difficulty=False)
        # Mispredictions exist but do not change the outcome dramatically
        # (the paper's claim in Sec. III-B.2).
        assert abs(with_rf.mae_bpm - oracle.mae_bpm) < 1.5
        assert abs(with_rf.offload_fraction - oracle.offload_fraction) < 0.15

    def test_empty_recording_rejected(self, runtime, small_dataset):
        subject = small_dataset.subjects[0]
        import dataclasses
        empty = dataclasses.replace(
            subject,
            ppg_windows=subject.ppg_windows[:0],
            accel_windows=subject.accel_windows[:0],
            activity=subject.activity[:0],
            hr=subject.hr[:0],
        )
        config = runtime.engine.select_or_closest(Constraint.max_mae(6.0))
        with pytest.raises(ValueError):
            runtime.run_with_configuration(empty, config)


class TestWindowDecision:
    def test_decision_fields(self, runtime, small_dataset):
        subject = small_dataset.subjects[2]
        result = runtime.run(subject, Constraint.max_mae(6.0), use_oracle_difficulty=True)
        decision = result.decisions[0]
        assert decision.window_index == 0
        assert decision.absolute_error == pytest.approx(
            abs(decision.predicted_hr - decision.true_hr)
        )
        assert decision.offloaded == (decision.target is ExecutionTarget.PHONE)
        assert decision.cost.watch_total_j > 0
