"""Property-based equivalence suite for the fleet engines.

The fleet correctness contract — *every* fast multi-subject path is
decision-for-decision identical to sequential ``run_many`` replay — is
pinned here across seeded randomized scenarios instead of a handful of
hand-picked fixtures.  Hypothesis draws fleet compositions (subject
counts and lengths, BLE traces or not, heterogeneous hardware revisions,
RF vs oracle difficulty, stateful vs ``FLEET_BATCHABLE`` predictors —
including a fully stateful zoo with a signal-reading spectral tracker —
stacked-state fused dispatch vs the legacy per-``(model, subject)``
fallback, the ``equivalence`` policy axis (bitwise vs tolerance) with a
real signal-reading TimePPG network in the zoo, the inference precision
axis (float64 vs float32 — float32 always under the tolerance policy
with the wider ``EQUIVALENCE_TOLERANCES`` bounds), worker counts 1/2/4,
arrival orderings, batch-size limits, mid-queue retirements) and every
example asserts bit-identical results — except the predictions of
tolerance-fused models under ``equivalence="tolerance"``, which must
stay within the runtime's documented ``EQUIVALENCE_ATOL`` /
``EQUIVALENCE_RTOL`` while every other field stays exact:

* :class:`~repro.core.scheduler.FleetScheduler` — dynamic sessions
  submitted one by one must replay exactly like sequential ``run_many``
  over the completed sessions in submission order, and the scheduler's
  predictor streams must land on exactly the state sequential replay
  reaches (checked through
  :meth:`~repro.models.base.HeartRatePredictor.fleet_state_signature`);
* :class:`~repro.core.fleet.FleetExecutor` — process-pool sharding with
  mixed hardware revisions in one run;
* :class:`~repro.core.fleet.SharedSubjectStore` — shared-memory blocks
  must round-trip the fleet's arrays exactly.

The suite is deterministic (``derandomize=True``): every run replays the
same example corpus, so tier-1 stays reproducible.
"""

from __future__ import annotations

import copy
import functools
import tempfile

import numpy as np
import pytest

pytest.importorskip("hypothesis", reason="property suite needs hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.decision_engine import Constraint
from repro.core.fleet import FleetExecutor, SharedSubjectStore
from repro.core.runtime import (
    CHRISRuntime,
    EQUIVALENCE_TOLERANCES,
    RunResult,
)
from repro.core.scheduler import FleetScheduler, SessionState
from repro.data.dataset import WindowedSubject
from repro.eval.benchmarking import stateful_zoo
from repro.eval.experiment import CalibratedExperiment
from repro.hw.platform import CostTableRegistry, WearableSystem
from repro.ml.activity_classifier import ActivityClassifier
from repro.models.timeppg import TimePPGConfig, TimePPGPredictor
from repro.signal.windowing import DEFAULT_WINDOW_SPEC

from tests.core.test_runtime_batched import assert_results_identical

CONSTRAINT = Constraint.max_mae(6.0)
WINDOW_LENGTH = 16

#: A real (signal-reading) TimePPG variant small enough for the property
#: suite's 16-sample windows; its forward is the genuine BLAS-backed TCN,
#: which is exactly what the tolerance equivalence axis needs to stress.
TINY_TIMEPPG_CONFIG = TimePPGConfig(
    name="TimePPG-Big",
    input_length=WINDOW_LENGTH,
    block_channels=(2, 2, 2),
    kernel_size=3,
    head_pool=2,
    head_hidden=0,
)


def assert_results_equivalent(
    reference: RunResult,
    result: RunResult,
    tolerance_models: frozenset,
    dtype: str = "float64",
) -> None:
    """Bit-exact equality except tolerance-fused models' predictions.

    Under ``equivalence="tolerance"`` the only field allowed to move —
    and only on windows routed to a tolerance-fused model — is the
    predicted HR, within the runtime's documented per-dtype atol/rtol
    (``EQUIVALENCE_TOLERANCES``).  Everything else (routing, difficulty,
    offload, costs, configuration) must stay bit-identical, whatever the
    policy or precision.
    """
    if not tolerance_models:
        assert_results_identical(reference, result)
        return
    atol, rtol = EQUIVALENCE_TOLERANCES[dtype]
    relaxed = np.isin(reference.model_names.astype(str), sorted(tolerance_models))
    np.testing.assert_array_equal(
        reference.predicted_hr[~relaxed], result.predicted_hr[~relaxed]
    )
    np.testing.assert_allclose(
        result.predicted_hr[relaxed],
        reference.predicted_hr[relaxed],
        atol=atol,
        rtol=rtol,
    )
    exact = copy.copy(result)
    exact.predicted_hr = reference.predicted_hr
    assert_results_identical(reference, exact)

SCENARIO_SETTINGS = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@functools.lru_cache(maxsize=1)
def _experiment() -> CalibratedExperiment:
    """One calibrated experiment shared by every example (read-only)."""
    return CalibratedExperiment.build(seed=0, n_subjects=4, activity_duration_s=40.0)


@functools.lru_cache(maxsize=1)
def _classifier() -> ActivityClassifier:
    """An RF difficulty detector trained on the property-suite geometry."""
    rng = np.random.default_rng(99)
    accel = rng.standard_normal((270, WINDOW_LENGTH, 3))
    activity = np.arange(270) % 9
    return ActivityClassifier(random_state=0).fit(accel, activity)


@functools.lru_cache(maxsize=4)
def _hardware(kind: str) -> WearableSystem:
    """Hardware revisions of the heterogeneous population (shared registry)."""
    registry = _hardware_registry()
    if kind == "stock":
        return WearableSystem(cost_registry=registry)
    if kind == "compressed":
        return WearableSystem(cost_registry=registry, offload_payload_bytes=64 * 4 * 2)
    if kind == "fast-period":
        return WearableSystem(cost_registry=registry, prediction_period_s=1.5)
    raise KeyError(kind)


@functools.lru_cache(maxsize=1)
def _hardware_registry() -> CostTableRegistry:
    return CostTableRegistry()


def make_subject(subject_id: str, n_windows: int, seed: int) -> WindowedSubject:
    """A windowed pseudo-recording; signals are noise (calibrated zoo)."""
    rng = np.random.default_rng(seed)
    return WindowedSubject(
        subject_id=subject_id,
        ppg_windows=rng.standard_normal((n_windows, WINDOW_LENGTH)),
        accel_windows=rng.standard_normal((n_windows, WINDOW_LENGTH, 3)),
        activity=rng.integers(0, 9, size=n_windows),
        hr=70.0 + 30.0 * rng.random(n_windows),
        spec=DEFAULT_WINDOW_SPEC,
    )


def make_trace(n_windows: int, seed: int) -> np.ndarray:
    """A BLE trace with at least one status change when possible."""
    rng = np.random.default_rng(seed)
    trace = rng.random(n_windows) < 0.7
    trace[0] = True
    if n_windows > 1:
        trace[n_windows // 2] = False
    return trace


@st.composite
def fleet_scenarios(draw):
    n_subjects = draw(st.integers(min_value=1, max_value=5))
    subjects = []
    for i in range(n_subjects):
        subjects.append(
            {
                "n_windows": draw(st.integers(min_value=8, max_value=60)),
                "seed": draw(st.integers(min_value=0, max_value=2**16)),
                "traced": draw(st.booleans()),
                "hardware": draw(
                    st.sampled_from([None, "stock", "compressed", "fast-period"])
                ),
            }
        )
    return {
        "subjects": subjects,
        "order": draw(st.permutations(range(n_subjects))),
        "workers": draw(st.sampled_from([1, 2, 4])),
        "max_batch": draw(st.sampled_from([None, 1, 2])),
        # Serving-policy axis: the deadline dispatcher may hold arrivals
        # back (here with a tiny SLO so examples never stall), but batch
        # composition must never move a decision bit.
        "policy": draw(st.sampled_from(["drain", "deadline"])),
        "use_rf": draw(st.booleans()),
        # "none": all FLEET_BATCHABLE; "flag": one calibrated model forced
        # through the stateful dispatch; "zoo": the fully stateful zoo
        # (spectral tracker + smoothed calibrated trackers).
        "stateful": draw(st.sampled_from(["none", "flag", "zoo"])),
        # Stacked-state fused dispatch vs legacy per-(model, subject)
        # fallback for the stateful predictors.
        "stacked": draw(st.booleans()),
        # Equivalence policy axis: bitwise keeps every path bit-exact;
        # tolerance fuses TOLERANCE_FUSABLE predictors across subjects.
        "equivalence": draw(st.sampled_from(["bitwise", "tolerance"])),
        # Inference precision axis: float32 runs the signal hot path in
        # single precision (always under the tolerance policy, with the
        # wider per-dtype bounds of EQUIVALENCE_TOLERANCES).
        "dtype": draw(st.sampled_from(["float64", "float32"])),
        # Swap a real (signal-reading) TimePPG network into the zoo so
        # the tolerance axis exercises a genuine BLAS forward (ignored
        # by the fully stateful zoo, which replaces every predictor).
        "timeppg": draw(st.booleans()),
        "retire": draw(st.integers(min_value=-1, max_value=n_subjects - 1)),
    }


def build_fleet(scenario):
    """Materialize a scenario: subjects in arrival order, traces, systems."""
    subjects = [
        make_subject(f"prop-{i:02d}", spec["n_windows"], spec["seed"])
        for i, spec in enumerate(scenario["subjects"])
    ]
    arrival = [subjects[i] for i in scenario["order"]]
    traces = {
        subjects[i].subject_id: make_trace(spec["n_windows"], spec["seed"] + 1)
        for i, spec in enumerate(scenario["subjects"])
        if spec["traced"]
    }
    systems = {
        subjects[i].subject_id: _hardware(spec["hardware"])
        for i, spec in enumerate(scenario["subjects"])
        if spec["hardware"] is not None
    }
    return arrival, traces, systems


def tolerance_fused_models(runtime: CHRISRuntime) -> frozenset:
    """Zoo members whose predictions may legally move under tolerance."""
    if runtime.equivalence != "tolerance":
        return frozenset()
    return frozenset(
        entry.name for entry in runtime.zoo if entry.predictor.TOLERANCE_FUSABLE
    )


def make_runtime(scenario) -> CHRISRuntime:
    """A pristine runtime configured for the scenario's difficulty source."""
    experiment = _experiment()
    if scenario["stateful"] == "zoo":
        # Fully stateful: a real spectral tracker plus smoothed calibrated
        # trackers (fresh predictors continuing the cached zoo's streams).
        zoo = stateful_zoo(experiment.zoo)
    else:
        zoo = copy.deepcopy(experiment.zoo)
        if scenario["timeppg"]:
            # A real TCN behind the TimePPG-Big deployment (the model the
            # selected configurations actually route windows to), frozen
            # so the fold + GEMM inference path is the one under test.
            zoo.entry("TimePPG-Big").predictor = TimePPGPredictor(
                TINY_TIMEPPG_CONFIG, seed=7
            ).freeze()
    dtype = scenario.get("dtype", "float64")
    # float32 inference cannot honor a bitwise contract against the
    # float64 reference; it always runs under the tolerance policy.
    equivalence = scenario["equivalence"] if dtype == "float64" else "tolerance"
    runtime = CHRISRuntime(
        zoo=zoo,
        engine=experiment.engine,
        system=experiment.system,
        activity_classifier=_classifier() if scenario["use_rf"] else None,
        stacked_state=scenario["stacked"],
        equivalence=equivalence,
        dtype=dtype,
    )
    if scenario["stateful"] == "flag":
        # Force one model through the stateful dispatch path.
        runtime.zoo.entry("TimePPG-Big").predictor.FLEET_BATCHABLE = False
    return runtime


@settings(max_examples=15, **SCENARIO_SETTINGS)
@given(scenario=fleet_scenarios())
def test_scheduler_matches_sequential_replay(scenario):
    """Dynamic sessions == sequential run_many over the completed sessions.

    Covers every scenario axis at once: arrival order defines the
    reference order, retired sessions drop out without touching any
    predictor stream, and the scheduler's final stream state must equal
    the state sequential replay leaves behind.
    """
    arrival, traces, systems = build_fleet(scenario)

    scheduler = FleetScheduler(
        make_runtime(scenario),
        CONSTRAINT,
        max_workers=scenario["workers"],
        max_batch_size=scenario["max_batch"],
        use_oracle_difficulty=not scenario["use_rf"],
        policy=scenario["policy"],
        slo_s=0.01,
        deadline_slack_s=0.0,
    )
    with scheduler:
        sessions = [
            scheduler.submit(
                subject.subject_id,
                subject,
                system=systems.get(subject.subject_id),
                connected_trace=traces.get(subject.subject_id),
            )
            for subject in arrival
        ]
        if scenario["retire"] >= 0:
            scheduler.retire(sessions[scenario["retire"]])
        scheduler.join()

    completed = [s for s in sessions if s.state is SessionState.DONE]
    retired = [s for s in sessions if s.state is SessionState.RETIRED]
    assert len(completed) + len(retired) == len(sessions), [
        (s.subject_id, s.state, s.error) for s in sessions
    ]

    reference = make_runtime(scenario)
    reference_fleet = reference.run_many(
        [s.recording for s in completed],
        CONSTRAINT,
        use_oracle_difficulty=not scenario["use_rf"],
        mega_batched=False,
        connected_traces={
            sid: t for sid, t in traces.items() if sid in {s.subject_id for s in completed}
        },
        systems={
            sid: sys for sid, sys in systems.items() if sid in {s.subject_id for s in completed}
        },
    )
    fused = tolerance_fused_models(reference)
    for session in completed:
        assert_results_equivalent(
            reference_fleet.results[session.subject_id],
            session.result,
            fused,
            dtype=str(reference.dtype),
        )

    # The scheduler's stream runtime must land on exactly the cross-run
    # predictor state sequential replay reaches — the invariant that makes
    # the *next* submission equivalent too.
    for entry, ref_entry in zip(scheduler._runtime.zoo, reference.zoo):
        assert entry.predictor.fleet_state_signature() == ref_entry.predictor.fleet_state_signature()


@settings(max_examples=10, **SCENARIO_SETTINGS)
@given(scenario=fleet_scenarios())
def test_tolerance_fused_timeppg_within_documented_bounds(scenario):
    """The tolerance policy's contract, pinned on every scenario shape.

    Forces ``equivalence="tolerance"`` with a real TimePPG network in
    the zoo (everything else — workers 1/2/4, arrival order, batch
    limits, retirements, traces, hardware mix — still varies), submits
    the fleet as dynamic sessions, and checks the fused results against
    sequential replay: every field bit-identical except the predictions
    of windows routed to the fused TCN, which must stay within the
    runtime's documented ``EQUIVALENCE_ATOL`` / ``EQUIVALENCE_RTOL``.
    """
    scenario = dict(scenario, equivalence="tolerance", timeppg=True)
    if scenario["stateful"] == "zoo":
        # The fully stateful zoo replaces every predictor; keep the real
        # TCN in the zoo so the fused path is actually exercised.
        scenario["stateful"] = "none"
    arrival, traces, systems = build_fleet(scenario)

    scheduler = FleetScheduler(
        make_runtime(scenario),
        CONSTRAINT,
        max_workers=scenario["workers"],
        max_batch_size=scenario["max_batch"],
        use_oracle_difficulty=not scenario["use_rf"],
        policy=scenario["policy"],
        slo_s=0.01,
        deadline_slack_s=0.0,
    )
    with scheduler:
        sessions = [
            scheduler.submit(
                subject.subject_id,
                subject,
                system=systems.get(subject.subject_id),
                connected_trace=traces.get(subject.subject_id),
            )
            for subject in arrival
        ]
        if scenario["retire"] >= 0:
            scheduler.retire(sessions[scenario["retire"]])
        scheduler.join()

    completed = [s for s in sessions if s.state is SessionState.DONE]
    assert all(s.state is not SessionState.FAILED for s in sessions), [
        (s.subject_id, s.state, s.error) for s in sessions
    ]

    reference = make_runtime(scenario)
    fused = tolerance_fused_models(reference)
    assert fused, "the tolerance scenario must carry a TOLERANCE_FUSABLE model"
    reference_fleet = reference.run_many(
        [s.recording for s in completed],
        CONSTRAINT,
        use_oracle_difficulty=not scenario["use_rf"],
        mega_batched=False,
        connected_traces={
            sid: t for sid, t in traces.items() if sid in {s.subject_id for s in completed}
        },
        systems={
            sid: sys for sid, sys in systems.items() if sid in {s.subject_id for s in completed}
        },
    )
    for session in completed:
        assert_results_equivalent(
            reference_fleet.results[session.subject_id],
            session.result,
            fused,
            dtype=str(reference.dtype),
        )


@settings(max_examples=6, **SCENARIO_SETTINGS)
@given(scenario=fleet_scenarios())
def test_pool_executor_matches_sequential_replay(scenario):
    """Process-pool sharding with mixed hardware == sequential replay."""
    arrival, traces, systems = build_fleet(scenario)
    reference_runtime = make_runtime(scenario)
    sequential = reference_runtime.run_many(
        arrival,
        CONSTRAINT,
        use_oracle_difficulty=not scenario["use_rf"],
        mega_batched=False,
        connected_traces=traces,
        systems=systems,
    )
    executor = FleetExecutor(
        make_runtime(scenario),
        max_workers=min(scenario["workers"], 2),
        shards_per_worker=2,
    )
    pooled = executor.run_fleet(
        arrival,
        CONSTRAINT,
        use_oracle_difficulty=not scenario["use_rf"],
        connected_traces=traces,
        systems=systems,
    )
    assert pooled.subject_ids == sequential.subject_ids
    fused = tolerance_fused_models(reference_runtime)
    for sid in sequential.subject_ids:
        assert_results_equivalent(
            sequential.results[sid],
            pooled.results[sid],
            fused,
            dtype=str(reference_runtime.dtype),
        )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_float32_fleet_decision_compatible_across_workers(workers):
    """A float32 fleet run is decision-compatible at any worker count.

    The sequential float64 bitwise run is the reference: a float32
    executor fleet must route every window to the same model and target
    with the same costs, report float32 predictions, and keep the
    predicted HR of every model within the documented float32 tolerance
    bounds — whether one, two, or four workers execute the shards.
    """
    scenario64 = {
        "stateful": "none",
        "timeppg": True,
        "use_rf": False,
        "stacked": True,
        "equivalence": "tolerance",
        "dtype": "float64",
    }
    scenario32 = dict(scenario64, dtype="float32")
    subjects = [make_subject(f"f32-{i:02d}", 24 + 8 * i, seed=100 + i) for i in range(3)]

    reference = make_runtime(scenario64).run_many(
        subjects, CONSTRAINT, use_oracle_difficulty=True, mega_batched=False
    )
    executor = FleetExecutor(
        make_runtime(scenario32), max_workers=workers, shards_per_worker=2
    )
    pooled = executor.run_fleet(subjects, CONSTRAINT, use_oracle_difficulty=True)

    atol, rtol = EQUIVALENCE_TOLERANCES["float32"]
    assert pooled.subject_ids == reference.subject_ids
    for sid in reference.subject_ids:
        ref, res = reference.results[sid], pooled.results[sid]
        assert res.predicted_hr.dtype == np.float32
        np.testing.assert_array_equal(ref.model_names, res.model_names)
        np.testing.assert_array_equal(ref.offloaded, res.offloaded)
        np.testing.assert_array_equal(ref.predicted_difficulty, res.predicted_difficulty)
        np.testing.assert_array_equal(ref.watch_compute_j, res.watch_compute_j)
        np.testing.assert_allclose(
            res.predicted_hr.astype(np.float64),
            ref.predicted_hr,
            atol=atol,
            rtol=rtol,
        )


@settings(max_examples=10, **SCENARIO_SETTINGS)
@given(scenario=fleet_scenarios())
def test_shared_subject_store_round_trips_exactly(scenario):
    """Shared-memory blocks reproduce every array bit-exactly."""
    arrival, _, _ = build_fleet(scenario)
    store = SharedSubjectStore(arrival)
    try:
        handles, rebuilt = SharedSubjectStore.attach(store.manifest)
        try:
            assert [s.subject_id for s in rebuilt] == [s.subject_id for s in arrival]
            for original, view in zip(arrival, rebuilt):
                np.testing.assert_array_equal(original.ppg_windows, view.ppg_windows)
                np.testing.assert_array_equal(original.accel_windows, view.accel_windows)
                np.testing.assert_array_equal(original.activity, view.activity)
                np.testing.assert_array_equal(original.hr, view.hr)
                np.testing.assert_array_equal(original.difficulty, view.difficulty)
                assert view.spec == original.spec
        finally:
            del rebuilt
            for handle in handles:
                handle.close()
    finally:
        store.close()
        store.unlink()


@settings(max_examples=6, **SCENARIO_SETTINGS)
@given(scenario=fleet_scenarios(), interrupt_after=st.integers(min_value=0, max_value=4))
def test_resumed_checkpoint_run_is_bit_identical_to_uninterrupted(
    scenario, interrupt_after
):
    """Kill-and-resume == uninterrupted, *bit-identical* — even under the
    tolerance policy.

    Both runs use the same checkpointed shard layout, and every shard is
    a pure function of (pristine runtime, shipped plans, prior window
    counts): whether a shard executes before or after a crash cannot move
    a single bit, and loaded ``DONE`` shards are byte-verified staged
    copies of exactly such executions.  So unlike the pooled-vs-sequential
    comparison (which tolerates fused-model drift), this one asserts
    strict identity on every field.
    """
    arrival, traces, systems = build_fleet(scenario)
    use_oracle = not scenario["use_rf"]
    workers = min(scenario["workers"], 2)

    def executor(directory):
        return FleetExecutor(
            make_runtime(scenario),
            max_workers=workers,
            shards_per_worker=2,
            checkpoint_dir=directory,
            retry_backoff_s=0.0,
        )

    def run(ex):
        return ex.run_fleet(
            arrival,
            CONSTRAINT,
            use_oracle_difficulty=use_oracle,
            connected_traces=traces,
            systems=systems,
        )

    with tempfile.TemporaryDirectory() as ref_dir:
        uninterrupted = run(executor(ref_dir))

    with tempfile.TemporaryDirectory() as directory:
        # Crash: consume a prefix of the stream, then kill the run.  The
        # consumed shards are durably staged; the rest are interrupted.
        stream = executor(directory).iter_runs(
            arrival,
            CONSTRAINT,
            use_oracle_difficulty=use_oracle,
            connected_traces=traces,
            systems=systems,
        )
        for consumed, _ in enumerate(stream, start=1):
            if consumed > interrupt_after:
                break
        stream.close()
        resumed = run(executor(directory))

    assert resumed.subject_ids == uninterrupted.subject_ids
    assert resumed.n_failed == 0
    for sid in uninterrupted.subject_ids:
        assert_results_equivalent(
            uninterrupted.results[sid], resumed.results[sid], frozenset()
        )
