"""Tests for the offline configuration profiler."""

import numpy as np
import pytest

from repro.core.configuration import Configuration, ExecutionMode
from repro.core.profiling import ConfigurationProfiler, ConfigurationTable, ProfilingData
from repro.eval.experiment import build_calibrated_zoo
from repro.hw.platform import WearableSystem
from repro.hw.profiles import PAPER_DEPLOYMENTS
from repro.models.registry import PAPER_MODEL_STATS


def synthetic_profiling_data(n_per_level: int = 30, seed: int = 0) -> ProfilingData:
    """Hand-built profiling data with uniform difficulty coverage."""
    rng = np.random.default_rng(seed)
    difficulty = np.repeat(np.arange(1, 10), n_per_level)
    n = difficulty.size
    # Per-level error scales chosen so that, in expectation, Big is the most
    # accurate model at every difficulty level and AT degrades the fastest —
    # the qualitative behaviour of the real models.
    errors = {
        "AT": rng.exponential(2.0 + 1.2 * difficulty),
        "TimePPG-Small": rng.exponential(3.2 + 0.30 * difficulty),
        "TimePPG-Big": rng.exponential(2.5 + 0.25 * difficulty),
    }
    return ProfilingData(
        errors=errors,
        predicted_difficulty=difficulty,
        true_difficulty=difficulty,
        true_hr=np.full(n, 75.0),
    )


class TestProfilingData:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProfilingData(errors={}, predicted_difficulty=np.array([1]),
                          true_difficulty=np.array([1]))
        with pytest.raises(ValueError):
            ProfilingData(errors={"AT": np.array([1.0, 2.0])},
                          predicted_difficulty=np.array([1]),
                          true_difficulty=np.array([1]))
        with pytest.raises(ValueError):
            ProfilingData(errors={"AT": np.array([-1.0])},
                          predicted_difficulty=np.array([1]),
                          true_difficulty=np.array([1]))
        with pytest.raises(ValueError):
            ProfilingData(errors={"AT": np.array([1.0])},
                          predicted_difficulty=np.array([0]),
                          true_difficulty=np.array([1]))

    def test_model_mae(self):
        data = synthetic_profiling_data()
        for name in data.model_names:
            assert data.model_mae(name) == pytest.approx(float(np.mean(data.errors[name])))

    def test_from_zoo_predictions(self, small_dataset, trained_activity_classifier):
        zoo = build_calibrated_zoo()
        subject = small_dataset.subjects[1]
        data = ProfilingData.from_zoo_predictions(zoo, subject, trained_activity_classifier)
        assert data.n_windows == subject.n_windows
        assert set(data.model_names) == set(zoo.names)
        # Ground-truth difficulty comes straight from the window labels.
        assert np.array_equal(data.true_difficulty, subject.difficulty)
        # Model accuracy ordering must hold on the profiling data.
        assert data.model_mae("TimePPG-Big") < data.model_mae("AT")

    def test_from_zoo_predictions_oracle(self, small_dataset):
        zoo = build_calibrated_zoo()
        subject = small_dataset.subjects[0]
        data = ProfilingData.from_zoo_predictions(zoo, subject, use_oracle_difficulty=True)
        assert np.array_equal(data.predicted_difficulty, data.true_difficulty)

    def test_classifier_required_without_oracle(self, small_dataset):
        zoo = build_calibrated_zoo()
        with pytest.raises(ValueError):
            ProfilingData.from_zoo_predictions(zoo, small_dataset.subjects[0])


class TestConfigurationProfiler:
    def test_profile_single_configuration(self):
        zoo = build_calibrated_zoo()
        profiler = ConfigurationProfiler(zoo, WearableSystem())
        data = synthetic_profiling_data()
        config = Configuration("AT", "TimePPG-Big", 5, ExecutionMode.HYBRID)
        profiled = profiler.profile_configuration(config, data)
        # 5 of 9 difficulty levels handled locally -> 4/9 offloaded.
        assert profiled.offload_fraction == pytest.approx(4 / 9, abs=0.01)
        assert profiled.mae_bpm > 0
        assert profiled.watch_energy_j > 0
        assert profiled.phone_energy_j > 0

    def test_threshold_extremes_match_single_models(self):
        zoo = build_calibrated_zoo()
        system = WearableSystem()
        profiler = ConfigurationProfiler(zoo, system)
        data = synthetic_profiling_data()
        all_simple = profiler.profile_configuration(
            Configuration("AT", "TimePPG-Big", 9, ExecutionMode.HYBRID), data
        )
        all_complex = profiler.profile_configuration(
            Configuration("AT", "TimePPG-Big", 0, ExecutionMode.HYBRID), data
        )
        assert all_simple.mae_bpm == pytest.approx(data.model_mae("AT"))
        assert all_simple.offload_fraction == 0.0
        # Energy equals the AT-local per-prediction cost (Table III).
        assert all_simple.watch_energy_j * 1e3 == pytest.approx(
            PAPER_MODEL_STATS["AT"].watch_energy_mj, rel=0.05
        )
        assert all_complex.mae_bpm == pytest.approx(data.model_mae("TimePPG-Big"))
        assert all_complex.offload_fraction == 1.0

    def test_energy_decreases_with_threshold_for_hybrid_pair(self):
        zoo = build_calibrated_zoo()
        profiler = ConfigurationProfiler(zoo, WearableSystem())
        data = synthetic_profiling_data()
        energies = []
        for threshold in range(10):
            config = Configuration("AT", "TimePPG-Big", threshold, ExecutionMode.HYBRID)
            energies.append(profiler.profile_configuration(config, data).watch_energy_j)
        assert all(b <= a + 1e-12 for a, b in zip(energies, energies[1:]))

    def test_profile_all_enumerates_design_space(self):
        zoo = build_calibrated_zoo()
        profiler = ConfigurationProfiler(zoo, WearableSystem())
        table = profiler.profile_all(synthetic_profiling_data())
        assert isinstance(table, ConfigurationTable)
        assert len(table) == 60

    def test_unknown_model_in_configuration(self):
        zoo = build_calibrated_zoo()
        profiler = ConfigurationProfiler(zoo, WearableSystem())
        data = synthetic_profiling_data()
        config = Configuration("AT", "Mystery", 5, ExecutionMode.LOCAL)
        with pytest.raises(KeyError):
            profiler.profile_configuration(config, data)

    def test_profiler_needs_two_models(self):
        from repro.core.zoo import ModelsZoo
        with pytest.raises(ValueError):
            ConfigurationProfiler(ModelsZoo())


class TestConfigurationTable:
    @pytest.fixture(scope="class")
    def table(self) -> ConfigurationTable:
        zoo = build_calibrated_zoo()
        profiler = ConfigurationProfiler(zoo, WearableSystem())
        # Enough windows per difficulty level that the per-level model
        # ordering (Big < Small < AT error) holds in the sample means.
        return profiler.profile_all(synthetic_profiling_data(n_per_level=200))

    def test_sorted_by_energy(self, table):
        energies = [c.watch_energy_j for c in table]
        assert energies == sorted(energies)

    def test_connection_filter(self, table):
        connected = table.feasible(connected=True)
        disconnected = table.feasible(connected=False)
        assert len(connected) == 60
        assert len(disconnected) == 30
        assert all(c.is_local for c in disconnected)

    def test_pareto_subset(self, table):
        front = table.pareto(connected=True)
        assert 0 < len(front) <= 60
        # Every front member must be feasible and non-dominated.
        for config in front:
            others = [c for c in table if c is not config]
            assert not any(
                o.mae_bpm <= config.mae_bpm and o.watch_energy_j < config.watch_energy_j
                for o in others
            )

    def test_local_pareto_spans_at_to_big(self, table):
        """With BLE lost, the local front still spans AT-only to Big-only
        (paper: 4.87-10.99 BPM, 0.234-41.07 mJ)."""
        front = table.pareto(connected=False)
        maes = [c.mae_bpm for c in front]
        energies = [c.watch_energy_mj for c in front]
        assert min(energies) == pytest.approx(PAPER_MODEL_STATS["AT"].watch_energy_mj, rel=0.05)
        assert max(energies) == pytest.approx(
            PAPER_MODEL_STATS["TimePPG-Big"].watch_energy_mj, rel=0.05
        )
        assert max(maes) <= max(c.mae_bpm for c in table) + 1e-9

    def test_text_rendering(self, table):
        text = table.to_text(only_pareto=True)
        assert "MAE" in text
        assert "AT+" in text

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationTable([])

    def test_indexing(self, table):
        assert table[0].watch_energy_j <= table[len(table) - 1].watch_energy_j
