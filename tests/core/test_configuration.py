"""Tests for CHRIS configurations and the design-space enumeration."""

import pytest

from repro.core.configuration import (
    ALL_THRESHOLDS,
    Configuration,
    ExecutionMode,
    ProfiledConfiguration,
    enumerate_configurations,
)
from repro.hw.profiles import ExecutionTarget


class TestConfiguration:
    def test_model_routing_by_difficulty(self):
        config = Configuration("AT", "TimePPG-Big", difficulty_threshold=4,
                               mode=ExecutionMode.HYBRID)
        # Difficulties 1-4 -> simple model on the watch.
        for level in (1, 2, 3, 4):
            assert config.model_for_difficulty(level) == ("AT", ExecutionTarget.WATCH)
        # Difficulties 5-9 -> complex model on the phone (hybrid).
        for level in (5, 9):
            assert config.model_for_difficulty(level) == ("TimePPG-Big", ExecutionTarget.PHONE)

    def test_local_mode_keeps_complex_model_on_watch(self):
        config = Configuration("AT", "TimePPG-Small", difficulty_threshold=3,
                               mode=ExecutionMode.LOCAL)
        assert config.model_for_difficulty(9) == ("TimePPG-Small", ExecutionTarget.WATCH)
        assert config.is_local

    def test_threshold_extremes(self):
        always_complex = Configuration("AT", "TimePPG-Big", 0, ExecutionMode.HYBRID)
        always_simple = Configuration("AT", "TimePPG-Big", 9, ExecutionMode.HYBRID)
        assert always_complex.model_for_difficulty(1)[0] == "TimePPG-Big"
        assert always_simple.model_for_difficulty(9)[0] == "AT"

    def test_invalid_configurations(self):
        with pytest.raises(ValueError):
            Configuration("AT", "AT", 3, ExecutionMode.LOCAL)
        with pytest.raises(ValueError):
            Configuration("AT", "TimePPG-Big", 10, ExecutionMode.LOCAL)
        config = Configuration("AT", "TimePPG-Big", 3, ExecutionMode.LOCAL)
        with pytest.raises(ValueError):
            config.model_for_difficulty(0)
        with pytest.raises(ValueError):
            config.model_for_difficulty(10)

    def test_label_is_informative(self):
        config = Configuration("AT", "TimePPG-Big", 6, ExecutionMode.HYBRID)
        label = config.label()
        assert "AT" in label and "TimePPG-Big" in label
        assert "hybrid" in label and "t6" in label


class TestEnumerateConfigurations:
    def test_paper_design_space_size(self):
        """3 models -> 3 pairs x 10 thresholds x 2 placements = 60 (Sec. III-C)."""
        configs = enumerate_configurations(["AT", "TimePPG-Small", "TimePPG-Big"])
        assert len(configs) == 60
        assert len(ALL_THRESHOLDS) == 10

    def test_pairs_respect_cost_ordering(self):
        configs = enumerate_configurations(["AT", "TimePPG-Small", "TimePPG-Big"])
        pairs = {(c.simple_model, c.complex_model) for c in configs}
        assert pairs == {
            ("AT", "TimePPG-Small"),
            ("AT", "TimePPG-Big"),
            ("TimePPG-Small", "TimePPG-Big"),
        }

    def test_no_duplicates(self):
        configs = enumerate_configurations(["A", "B", "C"])
        keys = {(c.simple_model, c.complex_model, c.difficulty_threshold, c.mode) for c in configs}
        assert len(keys) == len(configs)

    def test_four_models_scale(self):
        configs = enumerate_configurations(["A", "B", "C", "D"])
        assert len(configs) == 6 * 10 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            enumerate_configurations(["A"])
        with pytest.raises(ValueError):
            enumerate_configurations(["A", "A"])


class TestProfiledConfiguration:
    def _config(self):
        return Configuration("AT", "TimePPG-Big", 6, ExecutionMode.HYBRID)

    def test_properties(self):
        profiled = ProfiledConfiguration(
            configuration=self._config(),
            mae_bpm=5.2,
            watch_energy_j=0.4e-3,
            phone_energy_j=8e-3,
            mean_latency_s=0.02,
            offload_fraction=0.3,
        )
        assert profiled.watch_energy_mj == pytest.approx(0.4)
        assert not profiled.is_local
        assert "t6" in profiled.label()

    def test_validation(self):
        with pytest.raises(ValueError):
            ProfiledConfiguration(self._config(), -1.0, 1e-3, 1e-3, 0.1, 0.5)
        with pytest.raises(ValueError):
            ProfiledConfiguration(self._config(), 5.0, -1e-3, 1e-3, 0.1, 0.5)
        with pytest.raises(ValueError):
            ProfiledConfiguration(self._config(), 5.0, 1e-3, 1e-3, 0.1, 1.5)
