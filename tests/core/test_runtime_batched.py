"""Batched-vs-per-window equivalence and fleet-run tests for the runtime.

The batched execution engine must be *decision-for-decision* identical to
the reference per-window path: same model routing, same offload targets,
same predictions (the calibrated models' random streams are consumed in
the same order), same costs.  The equivalence tests run the two paths on
independent deep copies of the zoo so both start from identical predictor
state.
"""

import copy

import numpy as np
import pytest

from repro.core.decision_engine import Constraint
from repro.core.runtime import CHRISRuntime, FleetResult, RunResult

CONSTRAINT = Constraint.max_mae(6.0)


def make_runtime(experiment, batched: bool) -> CHRISRuntime:
    """A runtime over a private deep copy of the experiment's zoo.

    Deep-copying the zoo gives every path its own predictor instances with
    identical initial state (including the calibrated models' random
    generators), while the deterministic engine/system stay shared.
    """
    return CHRISRuntime(
        zoo=copy.deepcopy(experiment.zoo),
        engine=experiment.engine,
        system=experiment.system,
        batched=batched,
    )


def assert_results_identical(a: RunResult, b: RunResult) -> None:
    np.testing.assert_array_equal(a.window_index, b.window_index)
    np.testing.assert_array_equal(a.predicted_difficulty, b.predicted_difficulty)
    np.testing.assert_array_equal(a.true_difficulty, b.true_difficulty)
    np.testing.assert_array_equal(a.model_names.astype(str), b.model_names.astype(str))
    np.testing.assert_array_equal(a.offloaded, b.offloaded)
    np.testing.assert_array_equal(a.predicted_hr, b.predicted_hr)
    np.testing.assert_array_equal(a.true_hr, b.true_hr)
    for name in (
        "watch_compute_j",
        "watch_radio_j",
        "watch_idle_j",
        "phone_compute_j",
        "latency_s",
    ):
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name))
    # NaN-tolerant: zero-window subjects have an undefined (NaN) MAE.
    np.testing.assert_array_equal(a.mae_bpm, b.mae_bpm)
    assert a.configuration.label() == b.configuration.label()
    assert [(i, c.label()) for i, c in a.configuration_segments] == [
        (i, c.label()) for i, c in b.configuration_segments
    ]


class TestEquivalence:
    def test_plain_run_identical(self, calibrated_experiment, small_dataset):
        subject = small_dataset.subjects[2]
        scalar = make_runtime(calibrated_experiment, batched=False).run(
            subject, CONSTRAINT, use_oracle_difficulty=True
        )
        batched = make_runtime(calibrated_experiment, batched=True).run(
            subject, CONSTRAINT, use_oracle_difficulty=True
        )
        assert_results_identical(scalar, batched)

    def test_connection_trace_identical(self, calibrated_experiment, small_dataset):
        subject = small_dataset.subjects[1]
        n = subject.n_windows
        connected = np.ones(n, dtype=bool)
        connected[n // 4 : n // 2] = False
        connected[3 * n // 4 :] = False
        scalar = make_runtime(calibrated_experiment, batched=False).run_with_connection_trace(
            subject, CONSTRAINT, connected, use_oracle_difficulty=True
        )
        batched = make_runtime(calibrated_experiment, batched=True).run_with_connection_trace(
            subject, CONSTRAINT, connected, use_oracle_difficulty=True
        )
        assert_results_identical(scalar, batched)

    def test_per_call_override_beats_constructor_default(
        self, calibrated_experiment, small_dataset
    ):
        subject = small_dataset.subjects[0]
        runtime = make_runtime(calibrated_experiment, batched=True)
        reference = make_runtime(calibrated_experiment, batched=False)
        overridden = runtime.run(subject, CONSTRAINT, use_oracle_difficulty=True, batched=False)
        scalar = reference.run(subject, CONSTRAINT, use_oracle_difficulty=True)
        assert_results_identical(overridden, scalar)

    def test_rf_difficulty_identical(
        self, calibrated_experiment, small_dataset, trained_activity_classifier
    ):
        subject = small_dataset.subjects[3]
        runtimes = []
        for batched in (False, True):
            runtime = make_runtime(calibrated_experiment, batched=batched)
            runtime.activity_classifier = trained_activity_classifier
            runtimes.append(runtime)
        scalar = runtimes[0].run(subject, CONSTRAINT, use_oracle_difficulty=False)
        batched = runtimes[1].run(subject, CONSTRAINT, use_oracle_difficulty=False)
        assert_results_identical(scalar, batched)


class TestRunResultView:
    def test_lazy_decisions_match_arrays(self, calibrated_experiment, small_dataset):
        subject = small_dataset.subjects[2]
        result = make_runtime(calibrated_experiment, batched=True).run(
            subject, CONSTRAINT, use_oracle_difficulty=True
        )
        decisions = result.decisions
        assert len(decisions) == result.n_windows
        for i in (0, result.n_windows // 2, result.n_windows - 1):
            d = decisions[i]
            assert d.window_index == i
            assert d.model_name == str(result.model_names[i])
            assert d.offloaded == bool(result.offloaded[i])
            assert d.predicted_hr == float(result.predicted_hr[i])
            assert d.cost.watch_total_j == pytest.approx(
                float(result.watch_total_j_per_window[i])
            )
        # Materialized once, then cached.
        assert result.decisions is decisions

    def test_from_decisions_roundtrip(self, calibrated_experiment, small_dataset):
        subject = small_dataset.subjects[0]
        result = make_runtime(calibrated_experiment, batched=True).run(
            subject, CONSTRAINT, use_oracle_difficulty=True
        )
        rebuilt = RunResult.from_decisions(
            result.configuration, result.decisions, result.configuration_segments
        )
        assert_results_identical(result, rebuilt)

    def test_equality_has_value_semantics(self, calibrated_experiment, small_dataset):
        """``==`` must compare contents (as the list representation did),
        not raise on the array fields."""
        subject = small_dataset.subjects[0]
        result = make_runtime(calibrated_experiment, batched=True).run(
            subject, CONSTRAINT, use_oracle_difficulty=True
        )
        rebuilt = RunResult.from_decisions(
            result.configuration, result.decisions, result.configuration_segments
        )
        assert result == rebuilt
        assert result != RunResult(configuration=result.configuration)
        assert result != "not a result"

    def test_empty_result_aggregates(self, calibrated_experiment):
        configuration = calibrated_experiment.table.pareto()[0]
        empty = RunResult(configuration=configuration)
        assert empty.n_windows == 0
        assert np.isnan(empty.mae_bpm)
        assert empty.offload_fraction == 0.0
        assert empty.per_model_counts() == {}


class TestPredictorReset:
    def test_runs_reset_predictor_state(self, calibrated_experiment, small_dataset):
        """A run must not inherit tracker state from a previous subject."""
        runtime = make_runtime(calibrated_experiment, batched=True)
        for entry in runtime.zoo:
            entry.predictor._last_estimate = 999.0
        runtime.run(small_dataset.subjects[0], CONSTRAINT, use_oracle_difficulty=True)
        # Calibrated predictors never write _last_estimate, so the sentinel
        # surviving would mean reset() was skipped at run start.
        for entry in runtime.zoo:
            assert entry.predictor._last_estimate is None

    def test_trace_runs_reset_predictor_state(self, calibrated_experiment, small_dataset):
        subject = small_dataset.subjects[0]
        runtime = make_runtime(calibrated_experiment, batched=False)
        for entry in runtime.zoo:
            entry.predictor._last_estimate = 999.0
        runtime.run_with_connection_trace(
            subject, CONSTRAINT, np.ones(subject.n_windows, dtype=bool),
            use_oracle_difficulty=True,
        )
        for entry in runtime.zoo:
            assert entry.predictor._last_estimate is None


class TestRunMany:
    def test_fleet_aggregates(self, calibrated_experiment, small_dataset):
        runtime = make_runtime(calibrated_experiment, batched=True)
        fleet = runtime.run_many(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert fleet.n_subjects == len(small_dataset.subjects)
        assert fleet.subject_ids == small_dataset.subject_ids
        assert fleet.n_windows == sum(s.n_windows for s in small_dataset.subjects)
        expected_mae = sum(
            r.mae_bpm * r.n_windows for r in fleet.results.values()
        ) / fleet.n_windows
        assert fleet.mae_bpm == pytest.approx(expected_mae)
        assert 0.0 <= fleet.offload_fraction <= 1.0
        assert fleet.mean_watch_energy_j > 0
        assert "fleet:" in fleet.summary()

    def test_duplicate_subject_rejected(self, calibrated_experiment, small_dataset):
        runtime = make_runtime(calibrated_experiment, batched=True)
        subject = small_dataset.subjects[0]
        with pytest.raises(ValueError):
            runtime.run_many([subject, subject], CONSTRAINT, use_oracle_difficulty=True)

    def test_experiment_run_fleet_entry_point(self, calibrated_experiment, small_dataset):
        fleet = calibrated_experiment.run_fleet(small_dataset, CONSTRAINT)
        assert isinstance(fleet, FleetResult)
        assert fleet.n_subjects == len(small_dataset.subjects)
        assert np.isfinite(fleet.mae_bpm)

    def test_fleet_empty(self):
        fleet = FleetResult()
        assert fleet.n_windows == 0
        assert np.isnan(fleet.mae_bpm)
