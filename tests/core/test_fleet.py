"""Fleet execution engine tests: mega-batching, pool sharding, streaming.

Every fast fleet path — cross-subject mega-batching in one process and
process-pool sharding via :class:`FleetExecutor` — must produce a
:class:`FleetResult` bit-identical to sequential per-subject
``run_many``: same per-window decisions, predictions, costs, MAE and
energy, including fleets with per-subject BLE connection traces.  The
paths are compared on independent deep copies of the zoo so every run
starts from identical predictor state (including the calibrated models'
random streams).
"""

import copy

import numpy as np
import pytest

from repro.core.decision_engine import Constraint
from repro.core.fleet import FleetExecutor, SharedSubjectStore
from repro.core.runtime import CHRISRuntime, FleetResult
from repro.hw.platform import CostTableRegistry, WearableSystem

from tests.core.test_runtime_batched import assert_results_identical

CONSTRAINT = Constraint.max_mae(6.0)


def make_runtime(experiment, mega_batched: bool) -> CHRISRuntime:
    """A runtime over a private deep copy of the experiment's zoo."""
    return CHRISRuntime(
        zoo=copy.deepcopy(experiment.zoo),
        engine=experiment.engine,
        system=experiment.system,
        mega_batched=mega_batched,
    )


def assert_fleets_identical(a: FleetResult, b: FleetResult) -> None:
    assert a.subject_ids == b.subject_ids
    for sid in a.subject_ids:
        assert_results_identical(a.results[sid], b.results[sid])
    # NaN-tolerant: an all-empty fleet has undefined (NaN) aggregates.
    np.testing.assert_array_equal(a.mae_bpm, b.mae_bpm)
    np.testing.assert_array_equal(a.mean_watch_energy_j, b.mean_watch_energy_j)
    np.testing.assert_array_equal(a.offload_fraction, b.offload_fraction)


def half_disconnected_trace(n: int) -> np.ndarray:
    connected = np.ones(n, dtype=bool)
    connected[n // 4 : n // 2] = False
    connected[-n // 8 :] = False
    return connected


@pytest.fixture()
def sequential_fleet(calibrated_experiment, small_dataset) -> FleetResult:
    return make_runtime(calibrated_experiment, mega_batched=False).run_many(
        small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
    )


class TestMegaBatchedEquivalence:
    def test_mega_identical_to_sequential(
        self, calibrated_experiment, small_dataset, sequential_fleet
    ):
        mega = make_runtime(calibrated_experiment, mega_batched=True).run_many(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert_fleets_identical(sequential_fleet, mega)

    def test_mega_identical_with_connection_traces(
        self, calibrated_experiment, small_dataset
    ):
        """A fleet where some devices lose BLE mid-run replays identically."""
        traces = {
            subject.subject_id: half_disconnected_trace(subject.n_windows)
            for subject in small_dataset.subjects[::2]
        }
        sequential = make_runtime(calibrated_experiment, mega_batched=False).run_many(
            small_dataset.subjects,
            CONSTRAINT,
            use_oracle_difficulty=True,
            connected_traces=traces,
        )
        mega = make_runtime(calibrated_experiment, mega_batched=True).run_many(
            small_dataset.subjects,
            CONSTRAINT,
            use_oracle_difficulty=True,
            connected_traces=traces,
        )
        assert_fleets_identical(sequential, mega)
        traced = sequential.results[small_dataset.subjects[0].subject_id]
        assert len(traced.configuration_segments) > 1

    def test_mega_identical_with_rf_difficulty(
        self, calibrated_experiment, small_dataset, trained_activity_classifier
    ):
        fleets = []
        for mega in (False, True):
            runtime = make_runtime(calibrated_experiment, mega_batched=mega)
            runtime.activity_classifier = trained_activity_classifier
            fleets.append(
                runtime.run_many(
                    small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=False
                )
            )
        assert_fleets_identical(*fleets)

    def test_mega_identical_with_non_fleet_batchable_predictor(
        self, calibrated_experiment, small_dataset
    ):
        """The stateful fallback (per-(model, subject) segments with
        re-enacted reset boundaries) must also be decision-identical."""
        fleets = []
        for mega in (False, True):
            runtime = make_runtime(calibrated_experiment, mega_batched=mega)
            # Force one model through the stateful-predictor path; the
            # calibrated model's predictions are reset-insensitive, so
            # segment-wise dispatch must reproduce the fused result.
            runtime.zoo.entry("TimePPG-Big").predictor.FLEET_BATCHABLE = False
            fleets.append(
                runtime.run_many(
                    small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
                )
            )
        assert_fleets_identical(*fleets)
        counts = fleets[1].results[small_dataset.subjects[0].subject_id].per_model_counts()
        assert counts.get("TimePPG-Big", 0) > 0  # the fallback branch ran

    def test_mega_rejects_duplicate_subjects(self, calibrated_experiment, small_dataset):
        runtime = make_runtime(calibrated_experiment, mega_batched=True)
        subject = small_dataset.subjects[0]
        with pytest.raises(ValueError):
            runtime.run_many([subject, subject], CONSTRAINT, use_oracle_difficulty=True)

    def test_trace_for_unknown_subject_rejected(self, calibrated_experiment, small_dataset):
        runtime = make_runtime(calibrated_experiment, mega_batched=True)
        with pytest.raises(KeyError):
            runtime.run_many(
                small_dataset.subjects,
                CONSTRAINT,
                use_oracle_difficulty=True,
                connected_traces={"nobody": np.ones(4, dtype=bool)},
            )

    def test_planned_counts_match_executed_routing(
        self, calibrated_experiment, small_dataset, sequential_fleet
    ):
        counts = make_runtime(
            calibrated_experiment, mega_batched=True
        ).planned_model_window_counts(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        for subject, planned in zip(small_dataset.subjects, counts):
            executed = sequential_fleet.results[subject.subject_id].per_model_counts()
            assert {k: v for k, v in planned.items() if v} == executed


class TestFleetExecutor:
    def test_pool_identical_to_sequential(
        self, calibrated_experiment, small_dataset, sequential_fleet
    ):
        """Sharded multi-process replay is bit-identical, workers > 1."""
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=2,
            shards_per_worker=2,
        )
        parallel = executor.run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert_fleets_identical(sequential_fleet, parallel)

    def test_pool_identical_with_connection_traces(
        self, calibrated_experiment, small_dataset
    ):
        traces = {
            subject.subject_id: half_disconnected_trace(subject.n_windows)
            for subject in small_dataset.subjects[1::2]
        }
        sequential = make_runtime(calibrated_experiment, mega_batched=False).run_many(
            small_dataset.subjects,
            CONSTRAINT,
            use_oracle_difficulty=True,
            connected_traces=traces,
        )
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True), max_workers=2
        )
        parallel = executor.run_fleet(
            small_dataset.subjects,
            CONSTRAINT,
            use_oracle_difficulty=True,
            connected_traces=traces,
        )
        assert_fleets_identical(sequential, parallel)

    def test_pool_identical_with_rf_difficulty(
        self, calibrated_experiment, small_dataset, trained_activity_classifier
    ):
        """Shipped plans carry the classifier's difficulty stream; workers
        must not re-infer (they would get the same answer, but the test
        pins that the parent-planned path stays decision-identical)."""
        reference_runtime = make_runtime(calibrated_experiment, mega_batched=False)
        reference_runtime.activity_classifier = trained_activity_classifier
        sequential = reference_runtime.run_many(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=False
        )
        pooled_runtime = make_runtime(calibrated_experiment, mega_batched=True)
        pooled_runtime.activity_classifier = trained_activity_classifier
        parallel = FleetExecutor(pooled_runtime, max_workers=2).run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=False
        )
        assert_fleets_identical(sequential, parallel)

    def test_pool_rejects_trace_for_unknown_subject(
        self, calibrated_experiment, small_dataset
    ):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True), max_workers=2
        )
        with pytest.raises(KeyError):
            list(
                executor.iter_runs(
                    small_dataset.subjects,
                    CONSTRAINT,
                    use_oracle_difficulty=True,
                    connected_traces={"typo-id": np.ones(4, dtype=bool)},
                )
            )

    def test_iter_runs_early_break_does_not_hang(
        self, calibrated_experiment, small_dataset
    ):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=2,
            shards_per_worker=2,
        )
        stream = executor.iter_runs(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        first = next(stream)
        assert first[1].n_windows > 0
        stream.close()  # must cancel pending shards, not block on them

    def test_iter_runs_streams_every_subject(
        self, calibrated_experiment, small_dataset, sequential_fleet
    ):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=2,
            shards_per_worker=2,
        )
        streamed = dict(
            executor.iter_runs(small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True)
        )
        assert sorted(streamed) == sorted(sequential_fleet.subject_ids)
        for sid, result in streamed.items():
            assert_results_identical(sequential_fleet.results[sid], result)

    def test_repeated_calls_replay_identically(
        self, calibrated_experiment, small_dataset
    ):
        """Executor calls never advance the parent runtime's predictor
        streams, so back-to-back runs are bit-identical whatever the
        worker count."""
        pooled = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True), max_workers=2
        )
        first = pooled.run_fleet(small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True)
        second = pooled.run_fleet(small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True)
        assert_fleets_identical(first, second)
        in_process = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True), max_workers=1
        )
        assert_fleets_identical(
            first,
            in_process.run_fleet(small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True),
        )

    def test_single_worker_runs_in_process(
        self, calibrated_experiment, small_dataset, sequential_fleet
    ):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True), max_workers=1
        )
        fleet = executor.run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert_fleets_identical(sequential_fleet, fleet)

    def test_shard_bounds_partition_subjects(self, calibrated_experiment):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=3,
            shards_per_worker=2,
        )
        bounds = executor.shard_bounds(10)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 10
        for (_, stop), (start, _) in zip(bounds[:-1], bounds[1:]):
            assert stop == start
        assert executor.shard_bounds(0) == []

    def test_duplicate_subjects_rejected(self, calibrated_experiment, small_dataset):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True), max_workers=2
        )
        subject = small_dataset.subjects[0]
        with pytest.raises(ValueError):
            list(executor.iter_runs([subject, subject], CONSTRAINT))

    def test_validation(self, calibrated_experiment):
        runtime = make_runtime(calibrated_experiment, mega_batched=True)
        with pytest.raises(ValueError):
            FleetExecutor(runtime, max_workers=0)
        with pytest.raises(ValueError):
            FleetExecutor(runtime, shards_per_worker=0)

    def test_empty_fleet(self, calibrated_experiment):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True), max_workers=2
        )
        assert list(executor.iter_runs([], CONSTRAINT)) == []
        assert executor.run_fleet([], CONSTRAINT).n_subjects == 0


class TestHeterogeneousFleets:
    def make_systems(self, small_dataset):
        registry = CostTableRegistry()
        stock = WearableSystem(cost_registry=registry)
        compressed = WearableSystem(
            cost_registry=registry, offload_payload_bytes=64 * 4 * 2
        )
        systems = {
            subject.subject_id: compressed if i % 2 else stock
            for i, subject in enumerate(small_dataset.subjects)
        }
        return registry, systems

    def test_mixed_revisions_in_one_run_identical_to_sequential(
        self, calibrated_experiment, small_dataset
    ):
        """One executor now serves a mixed-revision population directly —
        no more one-executor-per-revision (cf. examples/fleet_simulation)."""
        registry, systems = self.make_systems(small_dataset)
        sequential = make_runtime(calibrated_experiment, mega_batched=False).run_many(
            small_dataset.subjects,
            CONSTRAINT,
            use_oracle_difficulty=True,
            systems=systems,
        )
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=2,
            shards_per_worker=2,
        )
        pooled = executor.run_fleet(
            small_dataset.subjects,
            CONSTRAINT,
            use_oracle_difficulty=True,
            systems=systems,
        )
        assert_fleets_identical(sequential, pooled)
        assert registry.n_revisions == 2
        # The revisions genuinely differ on offloaded windows.
        stock_result = pooled.results[small_dataset.subjects[0].subject_id]
        rev_b_result = pooled.results[small_dataset.subjects[1].subject_id]
        stock_radio = stock_result.watch_radio_j[stock_result.offloaded]
        rev_b_radio = rev_b_result.watch_radio_j[rev_b_result.offloaded]
        assert stock_radio.size and rev_b_radio.size
        assert rev_b_radio.max() < stock_radio.min()

    def test_systems_for_unknown_subject_rejected(
        self, calibrated_experiment, small_dataset
    ):
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True), max_workers=2
        )
        with pytest.raises(KeyError, match="systems for unknown subjects"):
            list(
                executor.iter_runs(
                    small_dataset.subjects,
                    CONSTRAINT,
                    use_oracle_difficulty=True,
                    systems={"nobody": WearableSystem()},
                )
            )
        runtime = make_runtime(calibrated_experiment, mega_batched=True)
        with pytest.raises(KeyError, match="systems for unknown subjects"):
            runtime.run_many(
                small_dataset.subjects,
                CONSTRAINT,
                use_oracle_difficulty=True,
                systems={"nobody": WearableSystem()},
            )


class TestSharedSubjectStore:
    def test_preserves_dtypes_bit_exactly(self, small_dataset):
        """A float32 fleet must stay float32 in the workers — a silent
        float64 upcast would break bit-equivalence with sequential replay
        for signal-reading predictors."""
        subject = copy.copy(small_dataset.subjects[0])
        subject.ppg_windows = subject.ppg_windows.astype(np.float32)
        subject.accel_windows = subject.accel_windows.astype(np.float32)
        store = SharedSubjectStore([subject])
        try:
            handles, [view] = SharedSubjectStore.attach(store.manifest)
            try:
                assert view.ppg_windows.dtype == np.float32
                assert view.accel_windows.dtype == np.float32
                np.testing.assert_array_equal(view.ppg_windows, subject.ppg_windows)
            finally:
                del view
                for handle in handles:
                    handle.close()
        finally:
            store.close()
            store.unlink()

    def test_mixed_dtypes_fall_back_to_pickling(self, small_dataset):
        subjects = [copy.copy(s) for s in small_dataset.subjects[:2]]
        subjects[1].ppg_windows = subjects[1].ppg_windows.astype(np.float32)
        assert not SharedSubjectStore.supports(subjects)

    def test_rejects_empty_and_mixed_geometry(self, small_dataset):
        with pytest.raises(ValueError):
            SharedSubjectStore([])
        subjects = list(small_dataset.subjects[:2])
        short = copy.copy(subjects[1])
        short.ppg_windows = subjects[1].ppg_windows[:, : subjects[1].ppg_windows.shape[1] // 2]
        assert not SharedSubjectStore.supports([subjects[0], short])
        with pytest.raises(ValueError, match="window geometry"):
            SharedSubjectStore([subjects[0], short])

    @pytest.mark.slow
    def test_spawn_pool_attaches_shared_memory(
        self, calibrated_experiment, small_dataset, sequential_fleet
    ):
        """A spawn pool (shared memory on by default) replays identically."""
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=2,
            shards_per_worker=1,
            start_method="spawn",
        )
        parallel = executor.run_fleet(
            small_dataset.subjects, CONSTRAINT, use_oracle_difficulty=True
        )
        assert_fleets_identical(sequential_fleet, parallel)


class TestExperimentWiring:
    def test_run_fleet_with_workers(self, calibrated_experiment, small_dataset):
        """Each path runs on a private experiment copy: the calibrated
        models' random streams advance across runs, so sharing one zoo
        between the two calls would change the second's predictions."""
        sequential = copy.deepcopy(calibrated_experiment).run_fleet(
            small_dataset, CONSTRAINT, mega_batched=False
        )
        pooled = copy.deepcopy(calibrated_experiment).run_fleet(
            small_dataset, CONSTRAINT, max_workers=2
        )
        assert pooled.subject_ids == sequential.subject_ids
        assert pooled.mae_bpm == sequential.mae_bpm

    def test_crossval_accepts_fleet_executor(self, calibrated_experiment, small_dataset):
        from repro.data.dataset import WindowedDataset
        from repro.data.splits import leave_subjects_out_folds
        from repro.eval.crossval import run_cross_validation
        from repro.models import AdaptiveThresholdPredictor

        corpus = WindowedDataset(small_dataset.subjects)
        via_executor = run_cross_validation(
            corpus,
            classical_models={"AT": AdaptiveThresholdPredictor()},
            fold_size=2,
            max_folds=2,
            chris_runtime=FleetExecutor(
                make_runtime(calibrated_experiment, mega_batched=True), max_workers=1
            ),
            chris_constraint=CONSTRAINT,
        )
        assert "CHRIS" in via_executor.model_names
        # Executor calls never mutate their runtime, so every fold's CHRIS
        # replay starts from the pristine predictor state — each fold must
        # match a fresh runtime's run on that fold's test subject.
        splits = leave_subjects_out_folds(corpus.subject_ids, fold_size=2)[:2]
        for split, fold in zip(splits, via_executor.folds):
            expected = (
                make_runtime(calibrated_experiment, mega_batched=True)
                .run_many([corpus.subject(split.test_subject)], CONSTRAINT)
                .mae_bpm
            )
            assert fold.mae_per_model["CHRIS"] == expected


class TestZeroWindowSubjects:
    """Fleets legitimately contain devices that produced no windows yet.

    Regression for the fused template broadcast: a fleet whose *first*
    subject had zero windows broadcast an empty ``(0, ...)`` template
    for signal-free predictors and failed.  Zero-window subjects must
    ride every multi-subject path and contribute an empty result.
    """

    @staticmethod
    def empty_subject(template, subject_id="empty"):
        from repro.data.dataset import WindowedSubject

        return WindowedSubject(
            subject_id=subject_id,
            ppg_windows=np.zeros((0,) + template.ppg_windows.shape[1:]),
            accel_windows=np.zeros((0,) + template.accel_windows.shape[1:]),
            activity=np.zeros(0, dtype=int),
            hr=np.zeros(0, dtype=float),
            spec=template.spec,
        )

    def fleet(self, small_dataset):
        subjects = small_dataset.subjects
        return [
            self.empty_subject(subjects[0], "empty-first"),
            subjects[0],
            self.empty_subject(subjects[0], "empty-mid"),
            subjects[1],
        ]

    @pytest.mark.parametrize("stacked_state", [True, False])
    def test_mega_matches_sequential_with_empty_subjects(
        self, calibrated_experiment, small_dataset, stacked_state
    ):
        fleet = self.fleet(small_dataset)
        sequential = make_runtime(calibrated_experiment, mega_batched=False).run_many(
            fleet, CONSTRAINT, use_oracle_difficulty=True
        )
        runtime = make_runtime(calibrated_experiment, mega_batched=True)
        runtime.stacked_state = stacked_state
        mega = runtime.run_many(fleet, CONSTRAINT, use_oracle_difficulty=True)
        assert_fleets_identical(sequential, mega)
        for sid in ("empty-first", "empty-mid"):
            assert mega.results[sid].n_windows == 0
            assert mega.results[sid].configuration.label()

    def test_pool_executor_handles_empty_subjects(
        self, calibrated_experiment, small_dataset
    ):
        fleet = self.fleet(small_dataset)
        sequential = make_runtime(calibrated_experiment, mega_batched=False).run_many(
            fleet, CONSTRAINT, use_oracle_difficulty=True
        )
        executor = FleetExecutor(
            make_runtime(calibrated_experiment, mega_batched=True),
            max_workers=2,
            shards_per_worker=2,
        )
        pooled = executor.run_fleet(fleet, CONSTRAINT, use_oracle_difficulty=True)
        assert_fleets_identical(sequential, pooled)

    def test_empty_subject_with_empty_trace_is_accepted(
        self, calibrated_experiment, small_dataset
    ):
        fleet = self.fleet(small_dataset)
        traces = {"empty-first": np.zeros(0, dtype=bool)}
        sequential = make_runtime(calibrated_experiment, mega_batched=False).run_many(
            fleet, CONSTRAINT, use_oracle_difficulty=True, connected_traces=traces
        )
        mega = make_runtime(calibrated_experiment, mega_batched=True).run_many(
            fleet, CONSTRAINT, use_oracle_difficulty=True, connected_traces=traces
        )
        assert_fleets_identical(sequential, mega)

    def test_empty_subject_with_nonempty_trace_raises(
        self, calibrated_experiment, small_dataset
    ):
        fleet = self.fleet(small_dataset)
        traces = {"empty-first": np.ones(3, dtype=bool)}
        for mega_batched in (False, True):
            with pytest.raises(ValueError, match="one entry per window"):
                make_runtime(calibrated_experiment, mega_batched=mega_batched).run_many(
                    fleet,
                    CONSTRAINT,
                    use_oracle_difficulty=True,
                    connected_traces=traces,
                )

    def test_all_empty_fleet_produces_empty_results(self, calibrated_experiment, small_dataset):
        template = small_dataset.subjects[0]
        fleet = [self.empty_subject(template, f"empty-{i}") for i in range(3)]
        for mega_batched in (False, True):
            result = make_runtime(calibrated_experiment, mega_batched=mega_batched).run_many(
                fleet, CONSTRAINT, use_oracle_difficulty=True
            )
            assert result.n_windows == 0
            assert result.n_subjects == 3
