"""Tests for the CHRIS models zoo."""

import pytest

from repro.core.zoo import ModelsZoo, ZooEntry
from repro.eval.experiment import build_calibrated_zoo
from repro.hw.profiles import PAPER_DEPLOYMENTS
from repro.models.error_model import calibrated_model_zoo


class TestModelsZoo:
    def test_calibrated_zoo_contents(self):
        zoo = build_calibrated_zoo()
        assert len(zoo) == 3
        assert set(zoo.names) == {"AT", "TimePPG-Small", "TimePPG-Big"}
        assert "AT" in zoo
        assert "nope" not in zoo

    def test_duplicate_registration_rejected(self):
        zoo = build_calibrated_zoo()
        predictor = calibrated_model_zoo()["AT"]
        with pytest.raises(ValueError):
            zoo.add(ZooEntry(predictor=predictor, deployment=PAPER_DEPLOYMENTS["AT"]))

    def test_lookup(self):
        zoo = build_calibrated_zoo()
        entry = zoo.entry("TimePPG-Big")
        assert entry.name == "TimePPG-Big"
        assert zoo.deployment("TimePPG-Big").mae_bpm == pytest.approx(4.87)
        assert zoo.predictor("AT").info.name == "AT"
        with pytest.raises(KeyError):
            zoo.entry("missing")

    def test_ordering_by_cost_and_accuracy(self):
        zoo = build_calibrated_zoo()
        by_cost = [e.name for e in zoo.ordered_by_cost()]
        by_accuracy = [e.name for e in zoo.ordered_by_accuracy()]
        assert by_cost == ["AT", "TimePPG-Small", "TimePPG-Big"]
        assert by_accuracy == ["TimePPG-Big", "TimePPG-Small", "AT"]

    def test_memory_footprint_matches_paper_claim(self):
        """The watch stores at most three models; with int8 weights the
        footprint is dominated by TimePPG-Big (~233 kB) and stays well under
        the STM32WB55's 1 MB flash."""
        zoo = build_calibrated_zoo()
        footprint = zoo.memory_footprint_bytes(bytes_per_parameter=1)
        assert footprint == 5_090 + 232_600
        assert footprint < 1_000_000

    def test_memory_footprint_validation(self):
        with pytest.raises(ValueError):
            build_calibrated_zoo().memory_footprint_bytes(0)

    def test_empty_zoo_iteration(self):
        zoo = ModelsZoo()
        assert len(zoo) == 0
        assert list(zoo) == []
