"""Property-based tests for the NN substrate (shapes, gradients, quantization)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import Conv1d, Dense
from repro.nn.quantization import asymmetric_spec, symmetric_spec


class TestConvShapeProperties:
    @given(
        st.integers(min_value=1, max_value=4),    # in channels
        st.integers(min_value=1, max_value=6),    # out channels
        st.integers(min_value=1, max_value=7),    # kernel
        st.integers(min_value=1, max_value=4),    # stride
        st.integers(min_value=1, max_value=4),    # dilation
        st.integers(min_value=16, max_value=128),  # length
    )
    @settings(max_examples=80, deadline=None)
    def test_same_padding_output_length_is_ceil_div(self, cin, cout, k, stride, dilation, length):
        conv = Conv1d(cin, cout, k, stride=stride, dilation=dilation,
                      rng=np.random.default_rng(0))
        x = np.zeros((2, cin, length))
        out = conv.forward(x)
        assert out.shape == (2, cout, int(np.ceil(length / stride)))
        assert conv.output_shape((cin, length)) == out.shape[1:]

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=12, max_value=48),
    )
    @settings(max_examples=30, deadline=None)
    def test_backward_input_gradient_matches_shape_and_linearity(self, cin, cout, k, dilation, length):
        """The conv is linear in its input: grad wrt input of sum(output)
        equals conv of all-ones kernel applied transposed — checked via the
        dot-product identity <conv(x), g> == <x, conv_backward(g)>."""
        rng = np.random.default_rng(1)
        conv = Conv1d(cin, cout, k, dilation=dilation, bias=False, rng=rng)
        x = rng.normal(size=(1, cin, length))
        g = rng.normal(size=conv.forward(x).shape)
        out = conv.forward(x, training=True)
        grad_x = conv.backward(g)
        assert grad_x.shape == x.shape
        assert np.allclose(np.sum(out * g), np.sum(x * grad_x), rtol=1e-8, atol=1e-8)


class TestDenseProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_dense_adjoint_identity(self, n_in, n_out, batch):
        rng = np.random.default_rng(2)
        dense = Dense(n_in, n_out, bias=False, rng=rng)
        x = rng.normal(size=(batch, n_in))
        g = rng.normal(size=(batch, n_out))
        out = dense.forward(x, training=True)
        grad_x = dense.backward(g)
        assert np.allclose(np.sum(out * g), np.sum(x * grad_x), rtol=1e-9, atol=1e-9)


class TestQuantizationProperties:
    values = st.lists(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=200,
    )

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_symmetric_roundtrip_error_bounded(self, raw):
        x = np.asarray(raw)
        spec = symmetric_spec(x)
        error = np.abs(spec.fake_quantize(x) - x)
        assert np.all(error <= spec.scale / 2 + 1e-12)

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_asymmetric_roundtrip_error_bounded(self, raw):
        x = np.asarray(raw)
        spec = asymmetric_spec(x)
        error = np.abs(spec.fake_quantize(x) - x)
        assert np.all(error <= spec.scale + 1e-12)

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_quantized_values_on_integer_grid(self, raw):
        x = np.asarray(raw)
        spec = symmetric_spec(x)
        q = spec.quantize(x)
        assert q.dtype.kind == "i"
        assert np.all(q >= spec.qmin)
        assert np.all(q <= spec.qmax)
