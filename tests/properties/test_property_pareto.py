"""Property-based tests for Pareto-front extraction and the decision engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import Configuration, ExecutionMode, ProfiledConfiguration
from repro.core.decision_engine import (
    Constraint,
    DecisionEngine,
    NoFeasibleConfigurationError,
)
from repro.core.pareto import pareto_front, pareto_indices
from repro.core.profiling import ConfigurationTable

point_list = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        st.floats(min_value=1e-6, max_value=50.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


def as_profiled(points):
    configs = []
    for i, (mae, energy_mj) in enumerate(points):
        configs.append(
            ProfiledConfiguration(
                configuration=Configuration(
                    "AT",
                    "TimePPG-Big",
                    difficulty_threshold=i % 10,
                    mode=ExecutionMode.LOCAL if i % 2 else ExecutionMode.HYBRID,
                ),
                mae_bpm=mae,
                watch_energy_j=energy_mj * 1e-3,
                phone_energy_j=0.0,
                mean_latency_s=0.01,
                offload_fraction=0.0,
            )
        )
    return configs


class TestParetoProperties:
    @given(point_list)
    @settings(max_examples=100, deadline=None)
    def test_front_members_are_mutually_non_dominated(self, points):
        front = pareto_indices(points)
        assert front  # at least one point is always non-dominated
        arr = np.asarray(points)
        for i in front:
            for j in front:
                if i == j:
                    continue
                dominates = (
                    arr[j][0] <= arr[i][0]
                    and arr[j][1] <= arr[i][1]
                    and (arr[j][0] < arr[i][0] or arr[j][1] < arr[i][1])
                )
                assert not dominates

    @given(point_list)
    @settings(max_examples=100, deadline=None)
    def test_every_point_dominated_by_or_on_the_front(self, points):
        configs = as_profiled(points)
        front = pareto_front(configs)
        for config in configs:
            covered = any(
                f.mae_bpm <= config.mae_bpm + 1e-12
                and f.watch_energy_j <= config.watch_energy_j + 1e-15
                for f in front
            )
            assert covered

    @given(point_list)
    @settings(max_examples=50, deadline=None)
    def test_front_is_monotone_tradeoff_curve(self, points):
        front = pareto_front(as_profiled(points))
        energies = [c.watch_energy_j for c in front]
        maes = [c.mae_bpm for c in front]
        assert energies == sorted(energies)
        # Along increasing energy, MAE must be non-increasing.
        assert all(b <= a + 1e-12 for a, b in zip(maes, maes[1:]))


class TestDecisionEngineProperties:
    @given(point_list, st.floats(min_value=0.5, max_value=60.0))
    @settings(max_examples=100, deadline=None)
    def test_selection_is_admissible_and_energy_minimal(self, points, max_mae):
        table = ConfigurationTable(as_profiled(points))
        engine = DecisionEngine(table, use_pareto_only=False)
        constraint = Constraint.max_mae(max_mae)
        try:
            selected = engine.select_configuration(constraint, connected=True)
        except NoFeasibleConfigurationError:
            assert all(c.mae_bpm > max_mae for c in table)
            return
        assert selected.mae_bpm <= max_mae
        admissible = [c for c in table if c.mae_bpm <= max_mae]
        assert selected.watch_energy_j == pytest.approx(
            min(c.watch_energy_j for c in admissible)
        )

    @given(point_list, st.floats(min_value=1e-3, max_value=60.0))
    @settings(max_examples=100, deadline=None)
    def test_energy_constraint_selection_is_mae_minimal(self, points, max_energy_mj):
        table = ConfigurationTable(as_profiled(points))
        engine = DecisionEngine(table, use_pareto_only=False)
        constraint = Constraint.max_energy_mj(max_energy_mj)
        try:
            selected = engine.select_configuration(constraint, connected=True)
        except NoFeasibleConfigurationError:
            assert all(c.watch_energy_j > constraint.value for c in table)
            return
        assert selected.watch_energy_j <= constraint.value
        admissible = [c for c in table if c.watch_energy_j <= constraint.value]
        assert selected.mae_bpm == pytest.approx(min(c.mae_bpm for c in admissible))

    @given(point_list)
    @settings(max_examples=50, deadline=None)
    def test_pareto_engine_selection_never_worse_than_full_table(self, points):
        """Restricting the search to the Pareto front never degrades the
        selected energy for an MAE constraint (fronts preserve optimality)."""
        table = ConfigurationTable(as_profiled(points))
        full = DecisionEngine(table, use_pareto_only=False)
        pareto = DecisionEngine(table, use_pareto_only=True)
        constraint = Constraint.max_mae(np.median([c.mae_bpm for c in table]) + 0.1)
        try:
            full_choice = full.select_configuration(constraint)
            pareto_choice = pareto.select_configuration(constraint)
        except NoFeasibleConfigurationError:
            return
        assert pareto_choice.watch_energy_j == pytest.approx(full_choice.watch_energy_j)
