"""Property-based tests for the signal-processing substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.signal.features import accelerometer_features
from repro.signal.filters import moving_average, standardize
from repro.signal.peaks import adaptive_threshold_peaks, count_sign_changes, find_peaks_simple
from repro.signal.spectral import spectral_entropy
from repro.signal.windowing import WindowSpec, sliding_windows

finite_signal = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=4, max_value=300),
    elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
)


class TestFilterProperties:
    @given(finite_signal, st.integers(min_value=1, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_moving_average_stays_within_signal_range(self, x, window):
        out = moving_average(x, window)
        assert out.shape == x.shape
        assert np.all(out >= x.min() - 1e-9)
        assert np.all(out <= x.max() + 1e-9)

    @given(finite_signal)
    @settings(max_examples=60, deadline=None)
    def test_moving_average_window_one_is_identity(self, x):
        assert np.allclose(moving_average(x, 1), x)

    @given(finite_signal)
    @settings(max_examples=60, deadline=None)
    def test_standardize_is_shift_and_scale_invariant(self, x):
        # The invariance only holds when the signal variance dominates the
        # stabilizing epsilon inside standardize().
        assume(float(np.std(x)) > 1e-3)
        a = standardize(x)
        b = standardize(3.0 * x + 10.0)
        assert np.allclose(a, b, atol=1e-4)


class TestPeakProperties:
    @given(finite_signal, st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_peaks_respect_min_distance_and_bounds(self, x, min_distance):
        peaks = find_peaks_simple(x, min_distance=min_distance)
        assert np.all(peaks >= 0)
        assert np.all(peaks < x.size)
        if peaks.size > 1:
            assert np.all(np.diff(peaks) >= min_distance)

    @given(finite_signal)
    @settings(max_examples=60, deadline=None)
    def test_adaptive_threshold_peaks_are_valid_indices(self, x):
        peaks = adaptive_threshold_peaks(x)
        assert np.all(peaks >= 0)
        assert np.all(peaks < x.size)
        # Each reported peak lies strictly above the signal mean-threshold at
        # that index only when any sample does; at minimum indices are sorted.
        assert np.all(np.diff(peaks) > 0)

    @given(finite_signal)
    @settings(max_examples=60, deadline=None)
    def test_sign_changes_bounded_by_length(self, x):
        changes = count_sign_changes(x)
        assert 0 <= changes <= max(0, x.size - 2)


class TestSpectralProperties:
    @given(finite_signal)
    @settings(max_examples=40, deadline=None)
    def test_spectral_entropy_in_unit_interval(self, x):
        value = spectral_entropy(x, fs=32.0)
        assert 0.0 <= value <= 1.0


class TestWindowingProperties:
    @given(
        st.integers(min_value=1, max_value=2000),
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=80, deadline=None)
    def test_window_count_formula(self, n_samples, length, stride):
        spec = WindowSpec(length=length, stride=stride)
        x = np.zeros(n_samples)
        windows = sliding_windows(x, spec)
        expected = 0 if n_samples < length else 1 + (n_samples - length) // stride
        assert windows.shape == (expected, length)

    @given(st.integers(min_value=30, max_value=400), st.integers(min_value=1, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_windows_reproduce_source_slices(self, n_samples, stride):
        spec = WindowSpec(length=25, stride=stride)
        x = np.arange(n_samples, dtype=float)
        windows = sliding_windows(x, spec)
        for i in range(windows.shape[0]):
            start = i * stride
            assert np.array_equal(windows[i], x[start:start + 25])


class TestFeatureProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(min_value=3, max_value=100), st.just(3)),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_features_are_finite_and_energy_nonnegative(self, window):
        features = accelerometer_features(window)
        assert features.shape == (4,)
        assert np.all(np.isfinite(features))
        assert features[1] >= 0.0  # energy
        assert features[2] >= 0.0  # std
        assert features[3] >= 0.0  # peak count
