"""Property-based tests for the classical-ML substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.metrics import accuracy_score, confusion_matrix, mean_absolute_error
from repro.ml.random_forest import RandomForestClassifier

feature_matrix = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=5, max_value=60), st.integers(min_value=1, max_value=5)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestTreeProperties:
    @given(feature_matrix, st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_predictions_are_known_classes_and_depth_bounded(self, X, max_depth, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 3, size=X.shape[0])
        tree = DecisionTreeClassifier(max_depth=max_depth, random_state=seed).fit(X, y)
        predictions = tree.predict(X)
        assert set(np.unique(predictions)) <= set(np.unique(y))
        assert tree.depth() <= max_depth
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    @given(feature_matrix)
    @settings(max_examples=30, deadline=None)
    def test_constant_labels_always_predicted(self, X):
        y = np.full(X.shape[0], 1)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y, n_classes=3)
        assert np.all(tree.predict(X) == 1)

    @given(feature_matrix, st.integers(min_value=0, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_unbounded_tree_fits_consistent_training_data(self, X, seed):
        """With no depth limit, a tree achieves perfect accuracy whenever no
        two identical feature rows carry different labels."""
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=X.shape[0])
        _, inverse = np.unique(X, axis=0, return_inverse=True)
        consistent = all(
            np.unique(y[inverse == group]).size == 1 for group in np.unique(inverse)
        )
        tree = DecisionTreeClassifier(max_depth=None, random_state=0).fit(X, y)
        if consistent:
            assert accuracy_score(y, tree.predict(X)) == 1.0


class TestForestProperties:
    @given(feature_matrix, st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_forest_probabilities_are_distributions(self, X, n_estimators, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 4, size=X.shape[0])
        forest = RandomForestClassifier(
            n_estimators=n_estimators, max_depth=3, random_state=seed
        ).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (X.shape[0], int(y.max()) + 1)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))


class TestMetricProperties:
    labels = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=100)

    @given(labels)
    @settings(max_examples=60, deadline=None)
    def test_accuracy_of_identical_labels_is_one(self, y):
        y = np.asarray(y)
        assert accuracy_score(y, y) == 1.0
        assert mean_absolute_error(y.astype(float), y.astype(float)) == 0.0

    @given(labels, st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_confusion_matrix_total_equals_sample_count(self, y, seed):
        y_true = np.asarray(y)
        rng = np.random.default_rng(seed)
        y_pred = rng.integers(0, 6, size=y_true.size)
        matrix = confusion_matrix(y_true, y_pred, n_classes=6)
        assert matrix.sum() == y_true.size
        # Row sums equal the per-class true counts.
        for cls in range(6):
            assert matrix[cls].sum() == np.sum(y_true == cls)

    @given(
        st.lists(st.floats(min_value=30, max_value=200, allow_nan=False), min_size=1, max_size=50),
        st.floats(min_value=-20, max_value=20, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_mae_of_constant_shift_is_the_shift(self, y, shift):
        y = np.asarray(y)
        assert mean_absolute_error(y, y + shift) == abs(shift) or np.isclose(
            mean_absolute_error(y, y + shift), abs(shift)
        )
