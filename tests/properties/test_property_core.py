"""Property-based tests for CHRIS configurations and profiling invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configuration import Configuration, ExecutionMode, enumerate_configurations
from repro.core.profiling import ConfigurationProfiler, ProfilingData
from repro.eval.experiment import build_calibrated_zoo
from repro.hw.platform import WearableSystem
from repro.hw.profiles import ExecutionTarget

ZOO = build_calibrated_zoo()
SYSTEM = WearableSystem()
PROFILER = ConfigurationProfiler(ZOO, SYSTEM)


def make_data(difficulties, seed=0):
    rng = np.random.default_rng(seed)
    difficulties = np.asarray(difficulties, dtype=int)
    n = difficulties.size
    errors = {
        "AT": rng.exponential(1.0 + difficulties.astype(float), size=n),
        "TimePPG-Small": rng.exponential(4.0, size=n),
        "TimePPG-Big": rng.exponential(3.0, size=n),
    }
    return ProfilingData(
        errors=errors,
        predicted_difficulty=difficulties,
        true_difficulty=difficulties,
        true_hr=np.full(n, 80.0),
    )


difficulty_arrays = st.lists(st.integers(min_value=1, max_value=9), min_size=5, max_size=80)


class TestConfigurationProperties:
    @given(st.integers(min_value=0, max_value=9), st.integers(min_value=1, max_value=9))
    @settings(max_examples=100, deadline=None)
    def test_routing_is_exhaustive_and_exclusive(self, threshold, difficulty):
        config = Configuration("AT", "TimePPG-Big", threshold, ExecutionMode.HYBRID)
        model, target = config.model_for_difficulty(difficulty)
        if difficulty <= threshold:
            assert model == "AT" and target is ExecutionTarget.WATCH
        else:
            assert model == "TimePPG-Big" and target is ExecutionTarget.PHONE

    @given(st.lists(st.sampled_from(["A", "B", "C", "D", "E"]), min_size=2, max_size=5,
                    unique=True))
    @settings(max_examples=50, deadline=None)
    def test_enumeration_size_formula(self, names):
        configs = enumerate_configurations(names)
        n = len(names)
        assert len(configs) == (n * (n - 1) // 2) * 10 * 2


class TestProfilingProperties:
    @given(difficulty_arrays, st.integers(min_value=0, max_value=9))
    @settings(max_examples=40, deadline=None)
    def test_profiled_mae_is_convex_mixture_of_model_maes(self, difficulties, threshold):
        data = make_data(difficulties)
        config = Configuration("AT", "TimePPG-Big", threshold, ExecutionMode.HYBRID)
        profiled = PROFILER.profile_configuration(config, data)
        low = min(data.errors["AT"].min(), data.errors["TimePPG-Big"].min())
        high = max(data.errors["AT"].max(), data.errors["TimePPG-Big"].max())
        assert low - 1e-9 <= profiled.mae_bpm <= high + 1e-9

    @given(difficulty_arrays, st.integers(min_value=0, max_value=9))
    @settings(max_examples=40, deadline=None)
    def test_offload_fraction_equals_share_of_hard_windows(self, difficulties, threshold):
        data = make_data(difficulties)
        config = Configuration("AT", "TimePPG-Big", threshold, ExecutionMode.HYBRID)
        profiled = PROFILER.profile_configuration(config, data)
        expected = float(np.mean(np.asarray(difficulties) > threshold))
        assert profiled.offload_fraction == pytest.approx(expected)

    @given(difficulty_arrays, st.integers(min_value=0, max_value=9))
    @settings(max_examples=40, deadline=None)
    def test_hybrid_energy_bounded_by_single_target_extremes(self, difficulties, threshold):
        data = make_data(difficulties)
        config = Configuration("AT", "TimePPG-Big", threshold, ExecutionMode.HYBRID)
        profiled = PROFILER.profile_configuration(config, data)
        at_local = SYSTEM.local_prediction_cost(ZOO.deployment("AT")).watch_total_j
        offloaded = SYSTEM.offloaded_prediction_cost(ZOO.deployment("TimePPG-Big")).watch_total_j
        low, high = min(at_local, offloaded), max(at_local, offloaded)
        assert low - 1e-12 <= profiled.watch_energy_j <= high + 1e-12

    @given(difficulty_arrays)
    @settings(max_examples=30, deadline=None)
    def test_local_configurations_never_offload(self, difficulties):
        data = make_data(difficulties)
        config = Configuration("AT", "TimePPG-Small", 4, ExecutionMode.LOCAL)
        profiled = PROFILER.profile_configuration(config, data)
        assert profiled.offload_fraction == 0.0
        assert profiled.phone_energy_j == 0.0
