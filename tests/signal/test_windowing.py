"""Tests for repro.signal.windowing."""

import numpy as np
import pytest

from repro.signal.windowing import (
    DEFAULT_WINDOW_SPEC,
    WindowSpec,
    label_windows,
    num_windows,
    sliding_windows,
    window_start_times,
)


class TestWindowSpec:
    def test_paper_geometry(self):
        spec = DEFAULT_WINDOW_SPEC
        assert spec.length == 256
        assert spec.stride == 64
        assert spec.fs == 32.0
        assert spec.duration_s == pytest.approx(8.0)
        assert spec.stride_s == pytest.approx(2.0)

    def test_num_windows_formula(self):
        spec = WindowSpec(length=256, stride=64)
        assert spec.num_windows(255) == 0
        assert spec.num_windows(256) == 1
        assert spec.num_windows(256 + 64) == 2
        assert spec.num_windows(256 + 63) == 1

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(length=0)
        with pytest.raises(ValueError):
            WindowSpec(stride=-1)
        with pytest.raises(ValueError):
            WindowSpec(fs=0)


class TestSlidingWindows:
    def test_1d_shapes_and_content(self):
        x = np.arange(256 + 3 * 64)
        windows = sliding_windows(x)
        assert windows.shape == (4, 256)
        assert np.array_equal(windows[0], x[:256])
        assert np.array_equal(windows[3], x[192:192 + 256])

    def test_2d_multichannel(self):
        x = np.arange(300 * 3).reshape(300, 3)
        spec = WindowSpec(length=100, stride=50)
        windows = sliding_windows(x, spec)
        assert windows.shape == (5, 100, 3)
        assert np.array_equal(windows[1], x[50:150])

    def test_too_short_signal(self):
        out = sliding_windows(np.arange(10), WindowSpec(length=100, stride=50))
        assert out.shape == (0, 100)

    def test_windows_are_copies(self):
        x = np.zeros(300)
        windows = sliding_windows(x, WindowSpec(length=100, stride=100))
        windows[0, 0] = 42.0
        assert x[0] == 0.0

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((10, 3, 2)))

    def test_count_matches_num_windows(self):
        x = np.zeros(1000)
        spec = WindowSpec(length=256, stride=64)
        assert sliding_windows(x, spec).shape[0] == num_windows(1000, spec)


class TestWindowStartTimes:
    def test_times_match_stride(self):
        times = window_start_times(256 + 64 * 4)
        assert np.allclose(times, [0.0, 2.0, 4.0, 6.0, 8.0])


class TestLabelWindows:
    def test_majority_label(self):
        spec = WindowSpec(length=10, stride=10)
        labels = np.array([0] * 4 + [1] * 6 + [2] * 10)
        out = label_windows(labels, spec)
        assert list(out) == [1, 2]

    def test_uniform_labels(self):
        spec = WindowSpec(length=8, stride=4)
        labels = np.full(20, 7)
        assert np.all(label_windows(labels, spec) == 7)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            label_windows(np.zeros((5, 2), dtype=int))
