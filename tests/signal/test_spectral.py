"""Tests for repro.signal.spectral."""

import numpy as np
import pytest

from repro.signal.spectral import (
    dominant_frequency,
    hr_from_spectrum,
    power_spectrum,
    power_spectrum_batch,
    spectral_entropy,
    welch_spectrum,
)


def sinusoid(freq_hz: float, fs: float = 32.0, duration_s: float = 8.0) -> np.ndarray:
    t = np.arange(0, duration_s, 1 / fs)
    return np.sin(2 * np.pi * freq_hz * t)


class TestPowerSpectrum:
    def test_peak_at_signal_frequency(self):
        freqs, power = power_spectrum(sinusoid(2.0), 32.0)
        assert freqs[np.argmax(power)] == pytest.approx(2.0, abs=0.05)

    def test_zero_padding_refines_grid(self):
        freqs, _ = power_spectrum(sinusoid(1.0), 32.0, nfft=4096)
        assert freqs[1] - freqs[0] == pytest.approx(32.0 / 4096)

    def test_empty_signal_rejected(self):
        with pytest.raises(ValueError):
            power_spectrum(np.array([]), 32.0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            power_spectrum(np.ones((4, 4)), 32.0)


class TestWelchSpectrum:
    def test_peak_at_signal_frequency(self):
        freqs, power = welch_spectrum(sinusoid(1.5, duration_s=30.0), 32.0)
        assert freqs[np.argmax(power)] == pytest.approx(1.5, abs=0.1)

    def test_short_signal_falls_back(self):
        freqs, power = welch_spectrum(sinusoid(1.0, duration_s=2.0), 32.0, segment_length=256)
        assert freqs.shape == power.shape

    def test_welch_reduces_noise_variance(self):
        rng = np.random.default_rng(0)
        x = sinusoid(1.0, duration_s=60.0) + rng.normal(0, 1.0, size=60 * 32)
        _, p_single = power_spectrum(x, 32.0, nfft=1024)
        _, p_welch = welch_spectrum(x, 32.0, segment_length=128)

        def noise_floor_cv(p: np.ndarray) -> float:
            band = p[int(0.8 * p.size):int(0.95 * p.size)]
            return float(np.std(band) / np.mean(band))

        # A raw periodogram's noise floor fluctuates with a coefficient of
        # variation near 1; Welch averaging of K segments reduces it by
        # roughly sqrt(K).
        assert noise_floor_cv(p_welch) < 0.6 * noise_floor_cv(p_single)

    def test_invalid_overlap(self):
        with pytest.raises(ValueError):
            welch_spectrum(sinusoid(1.0), 32.0, overlap=1.5)


class TestDominantFrequency:
    def test_recovers_frequency(self):
        assert dominant_frequency(sinusoid(1.2), 32.0) == pytest.approx(1.2, abs=0.05)

    def test_band_restriction(self):
        # Strong out-of-band component should be ignored.
        x = 3.0 * sinusoid(6.0) + sinusoid(1.0)
        assert dominant_frequency(x, 32.0, band=(0.5, 3.7)) == pytest.approx(1.0, abs=0.05)

    def test_band_outside_support_rejected(self):
        with pytest.raises(ValueError):
            dominant_frequency(sinusoid(1.0), 32.0, band=(100.0, 200.0))


class TestHrFromSpectrum:
    def test_hr_of_75_bpm_signal(self):
        x = sinusoid(75.0 / 60.0)
        assert hr_from_spectrum(x, 32.0) == pytest.approx(75.0, abs=3.0)


class TestSpectralEntropy:
    def test_pure_tone_has_lower_entropy_than_noise(self):
        rng = np.random.default_rng(7)
        tone = spectral_entropy(sinusoid(1.5), 32.0)
        noise = spectral_entropy(rng.normal(size=256), 32.0)
        assert tone < 0.5
        assert tone < noise - 0.2

    def test_white_noise_has_high_entropy(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(size=256)
        assert spectral_entropy(noise, 32.0) > 0.7

    def test_silence_has_zero_entropy(self):
        assert spectral_entropy(np.zeros(256), 32.0) == 0.0

    def test_bounded_in_unit_interval(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            x = rng.normal(size=128)
            assert 0.0 <= spectral_entropy(x, 32.0) <= 1.0


class TestPowerSpectrumBatch:
    def test_rows_bit_identical_to_scalar_calls(self):
        """The fused fleet predictors rely on exact per-row equivalence."""
        rng = np.random.default_rng(0)
        batch = rng.standard_normal((17, 64))
        freqs_b, power_b = power_spectrum_batch(batch, fs=32.0)
        for i, row in enumerate(batch):
            freqs, power = power_spectrum(row, fs=32.0)
            np.testing.assert_array_equal(freqs, freqs_b)
            np.testing.assert_array_equal(power, power_b[i])

    def test_explicit_nfft_matches_scalar(self):
        rng = np.random.default_rng(1)
        batch = rng.standard_normal((4, 48))
        _, power_b = power_spectrum_batch(batch, fs=32.0, nfft=512)
        for i, row in enumerate(batch):
            _, power = power_spectrum(row, fs=32.0, nfft=512)
            np.testing.assert_array_equal(power, power_b[i])

    def test_rejects_non_2d_and_empty(self):
        with pytest.raises(ValueError, match="expects"):
            power_spectrum_batch(np.zeros(16), fs=32.0)
        with pytest.raises(ValueError, match="empty"):
            power_spectrum_batch(np.zeros((3, 0)), fs=32.0)
