"""Per-kernel dtype discipline suite.

The float32 inference engine rests on two kernel-level properties, both
pinned here at float64 AND float32:

* **dtype inheritance** — the hot-path signal kernels compute in the
  dtype of their input: a float32 batch produces float32 outputs with no
  silent float64 re-promotion (the Hann window cast in
  :mod:`repro.signal.spectral`, the warm-up divisors in
  :mod:`repro.signal.filters`).
* **batch/scalar twin bit-identity per dtype** — every batched kernel is
  bit-identical, row for row, to its scalar twin run at the same dtype.
  The twins share elementwise operation order (sequential cumsum,
  reduceat region maxima, row-wise FFT), so the identity that holds at
  float64 holds at float32 too — which is exactly what lets a float32
  fleet stay decision-compatible across batch compositions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.signal.filters import moving_average, moving_average_batch, standardize
from repro.signal.peaks import (
    adaptive_threshold_peaks,
    adaptive_threshold_peaks_batch,
    peak_intervals_to_bpm,
    peak_intervals_to_bpm_batch,
)
from repro.signal.spectral import power_spectrum, power_spectrum_batch

DTYPES = [np.float64, np.float32]


def make_batch(n_rows: int, length: int, dtype, seed: int = 0) -> np.ndarray:
    """A PPG-like batch: noisy sinusoids so the AT detector finds peaks."""
    rng = np.random.default_rng(seed)
    t = np.arange(length) / 32.0
    hr_hz = 1.0 + 1.5 * rng.random((n_rows, 1))
    x = np.sin(2 * np.pi * hr_hz * t) + 0.3 * rng.standard_normal((n_rows, length))
    return x.astype(dtype)


# ------------------------------------------------------------- inheritance
@pytest.mark.parametrize("dtype", DTYPES)
def test_kernels_inherit_input_dtype(dtype):
    batch = make_batch(6, 256, dtype)
    assert moving_average(batch[0], 24).dtype == dtype
    assert moving_average_batch(batch, 24).dtype == dtype
    assert standardize(batch).dtype == dtype
    _, power = power_spectrum(batch[0], fs=32.0)
    assert power.dtype == dtype
    _, power_b = power_spectrum_batch(batch, fs=32.0)
    assert power_b.dtype == dtype


def test_integer_input_promotes_to_default_float():
    # Boundary coercion: non-float input enters the pipeline as float64.
    x = np.arange(64, dtype=np.int32)
    assert moving_average(x, 8).dtype == np.float64
    _, power = power_spectrum(x, fs=32.0)
    assert power.dtype == np.float64


# ----------------------------------------------------------- batch twins
@pytest.mark.parametrize("dtype", DTYPES)
def test_moving_average_batch_twin_bit_identical(dtype):
    batch = make_batch(9, 256, dtype)
    batched = moving_average_batch(batch, 24)
    for i in range(batch.shape[0]):
        scalar = moving_average(batch[i], 24)
        assert scalar.dtype == dtype
        np.testing.assert_array_equal(batched[i], scalar)


@pytest.mark.parametrize("dtype", DTYPES)
def test_adaptive_threshold_peaks_batch_twin_bit_identical(dtype):
    batch = make_batch(9, 256, dtype, seed=3)
    rows, positions = adaptive_threshold_peaks_batch(batch, window=24)
    for i in range(batch.shape[0]):
        scalar_peaks = adaptive_threshold_peaks(batch[i], window=24)
        np.testing.assert_array_equal(positions[rows == i], scalar_peaks)


@pytest.mark.parametrize("dtype", DTYPES)
def test_peak_intervals_to_bpm_batch_twin_bit_identical(dtype):
    batch = make_batch(9, 256, dtype, seed=5)
    rows, positions = adaptive_threshold_peaks_batch(batch, window=24)
    bpm = peak_intervals_to_bpm_batch(rows, positions, batch.shape[0], fs=32.0)
    for i in range(batch.shape[0]):
        scalar = peak_intervals_to_bpm(
            adaptive_threshold_peaks(batch[i], window=24), fs=32.0
        )
        if np.isnan(scalar):
            assert np.isnan(bpm[i])
        else:
            assert bpm[i] == scalar  # bit-identical, not allclose


@pytest.mark.parametrize("dtype", DTYPES)
def test_power_spectrum_batch_twin_bit_identical(dtype):
    batch = make_batch(7, 256, dtype, seed=7)
    freqs_b, power_b = power_spectrum_batch(batch, fs=32.0)
    for i in range(batch.shape[0]):
        freqs, power = power_spectrum(batch[i], fs=32.0)
        np.testing.assert_array_equal(freqs_b, freqs)
        np.testing.assert_array_equal(power_b[i], power)


# ----------------------------------------------------- cross-dtype sanity
def test_float32_peaks_track_float64_peaks():
    """Peak positions at float32 match float64 on clean-margin signals.

    Not a bitwise guarantee (a sample sitting exactly on the threshold
    can flip with precision) — but on the synthetic PPG used here the
    comparisons have macroscopic margins, so the detected peak trains
    coincide and the derived BPM agrees to float32 resolution.
    """
    batch64 = make_batch(6, 256, np.float64, seed=11)
    batch32 = batch64.astype(np.float32)
    rows64, pos64 = adaptive_threshold_peaks_batch(batch64, window=24)
    rows32, pos32 = adaptive_threshold_peaks_batch(batch32, window=24)
    np.testing.assert_array_equal(rows64, rows32)
    np.testing.assert_array_equal(pos64, pos32)
    bpm64 = peak_intervals_to_bpm_batch(rows64, pos64, 6, fs=32.0)
    bpm32 = peak_intervals_to_bpm_batch(rows32, pos32, 6, fs=32.0)
    # Identical integer peak trains -> identical float64 BPM conversion.
    np.testing.assert_array_equal(bpm64, bpm32)
