"""Tests for repro.signal.resample."""

import numpy as np
import pytest

from repro.signal.resample import linear_resample, resample_to_rate


class TestLinearResample:
    def test_identity_when_length_matches(self):
        x = np.arange(10.0)
        assert np.allclose(linear_resample(x, 10), x)

    def test_upsampling_preserves_endpoints(self):
        x = np.array([0.0, 1.0, 4.0])
        out = linear_resample(x, 9)
        assert out[0] == pytest.approx(0.0)
        assert out[-1] == pytest.approx(4.0)
        assert out.shape == (9,)

    def test_linear_signal_is_exact(self):
        x = np.linspace(0, 5, 11)
        out = linear_resample(x, 23)
        assert np.allclose(out, np.linspace(0, 5, 23))

    def test_2d_channels_resampled_independently(self):
        x = np.stack([np.linspace(0, 1, 20), np.linspace(5, 0, 20)], axis=1)
        out = linear_resample(x, 40)
        assert out.shape == (40, 2)
        assert out[0, 1] == pytest.approx(5.0)
        assert out[-1, 1] == pytest.approx(0.0)

    def test_single_sample_broadcast(self):
        out = linear_resample(np.array([3.0]), 5)
        assert np.allclose(out, 3.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            linear_resample(np.arange(5.0), 0)
        with pytest.raises(ValueError):
            linear_resample(np.array([]), 4)
        with pytest.raises(ValueError):
            linear_resample(np.zeros((2, 2, 2)), 4)


class TestResampleToRate:
    def test_64_to_32_halves_length(self):
        x = np.arange(640.0)
        out = resample_to_rate(x, 64.0, 32.0)
        assert out.shape == (320,)

    def test_frequency_content_preserved(self):
        fs_in, fs_out = 64.0, 32.0
        t = np.arange(0, 10, 1 / fs_in)
        x = np.sin(2 * np.pi * 1.0 * t)
        out = resample_to_rate(x, fs_in, fs_out)
        t_out = np.arange(out.size) / fs_out
        expected = np.sin(2 * np.pi * 1.0 * t_out)
        assert np.corrcoef(out, expected)[0, 1] > 0.99

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            resample_to_rate(np.arange(10.0), 0.0, 32.0)
        with pytest.raises(ValueError):
            resample_to_rate(np.arange(10.0), 32.0, -1.0)
