"""Tests for repro.signal.peaks."""

import numpy as np
import pytest

from repro.signal.peaks import (
    adaptive_threshold_peaks,
    adaptive_threshold_peaks_batch,
    count_sign_changes,
    find_peaks_simple,
    peak_intervals_to_bpm,
    peak_intervals_to_bpm_batch,
)


def synthetic_pulse_train(bpm: float, fs: float = 32.0, duration_s: float = 20.0) -> np.ndarray:
    """Sharp periodic pulses at a known rate."""
    t = np.arange(0, duration_s, 1 / fs)
    phase = (t * bpm / 60.0) % 1.0
    return np.exp(-0.5 * ((phase - 0.3) / 0.05) ** 2)


class TestFindPeaksSimple:
    def test_finds_all_peaks_of_a_pulse_train(self):
        x = synthetic_pulse_train(60.0)
        peaks = find_peaks_simple(x, min_distance=10)
        # 60 BPM for 20 s -> about 20 peaks.
        assert 18 <= peaks.size <= 21

    def test_min_distance_is_enforced(self):
        x = synthetic_pulse_train(120.0)
        peaks = find_peaks_simple(x, min_distance=20)
        assert np.all(np.diff(peaks) >= 20)

    def test_min_height_filters_small_peaks(self):
        x = np.zeros(50)
        x[10] = 1.0
        x[30] = 0.2
        peaks = find_peaks_simple(x, min_height=0.5)
        assert list(peaks) == [10]

    def test_short_and_empty_signals(self):
        assert find_peaks_simple(np.array([])).size == 0
        assert find_peaks_simple(np.array([1.0, 2.0])).size == 0

    def test_rejects_bad_min_distance(self):
        with pytest.raises(ValueError):
            find_peaks_simple(np.ones(10), min_distance=0)

    def test_monotonic_signal_has_no_peaks(self):
        assert find_peaks_simple(np.arange(20.0)).size == 0


class TestAdaptiveThresholdPeaks:
    def test_detects_pulse_train_rate(self):
        fs = 32.0
        x = synthetic_pulse_train(75.0, fs=fs)
        peaks = adaptive_threshold_peaks(x, window=24)
        bpm = peak_intervals_to_bpm(peaks, fs)
        assert bpm == pytest.approx(75.0, abs=6.0)

    def test_one_peak_per_region_of_interest(self):
        x = np.zeros(100)
        x[20:25] = [1, 3, 5, 3, 1]
        x[60:65] = [1, 2, 6, 2, 1]
        peaks = adaptive_threshold_peaks(x, window=24)
        assert list(peaks) == [22, 62]

    def test_flat_signal_yields_no_peaks(self):
        assert adaptive_threshold_peaks(np.zeros(64)).size == 0

    def test_empty_signal(self):
        assert adaptive_threshold_peaks(np.array([])).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            adaptive_threshold_peaks(np.ones((4, 4)))


class TestAdaptiveThresholdPeaksBatch:
    """The batched detector must be bit-identical per row to the scalar one."""

    def assert_rows_identical(self, x: np.ndarray, window: int = 24) -> None:
        rows, positions = adaptive_threshold_peaks_batch(x, window=window)
        assert np.all(np.diff(rows * (x.shape[1] + 1) + positions) > 0)
        for i in range(x.shape[0]):
            np.testing.assert_array_equal(
                adaptive_threshold_peaks(x[i], window=window), positions[rows == i]
            )

    @pytest.mark.parametrize("length", [16, 64, 256])
    def test_random_batches_match_scalar(self, length):
        rng = np.random.default_rng(length)
        self.assert_rows_identical(rng.standard_normal((64, length)))

    def test_pulse_trains_match_scalar(self):
        x = np.stack(
            [synthetic_pulse_train(bpm, duration_s=8.0) for bpm in (55.0, 80.0, 140.0)]
        )
        self.assert_rows_identical(x)

    def test_edge_windows(self):
        """Flat, all-NaN and single-peak rows behave exactly like scalar."""
        x = np.zeros((4, 64))
        x[1] = np.nan
        x[2, 30] = 1.0  # a single peak
        x[3] = np.sin(np.linspace(0, 12 * np.pi, 64))
        self.assert_rows_identical(x)

    def test_empty_batches(self):
        rows, positions = adaptive_threshold_peaks_batch(np.zeros((0, 32)))
        assert rows.size == 0 and positions.size == 0
        rows, positions = adaptive_threshold_peaks_batch(np.zeros((3, 0)))
        assert rows.size == 0 and positions.size == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            adaptive_threshold_peaks_batch(np.zeros(16))


class TestPeakIntervalsToBpmBatch:
    def rows_reference(self, rows, positions, n_rows, **kwargs):
        return np.array(
            [
                peak_intervals_to_bpm(positions[rows == i], **kwargs)
                for i in range(n_rows)
            ]
        )

    def test_matches_scalar_per_row(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((50, 256))
        x[7] = 0.0  # no peaks at all
        rows, positions = adaptive_threshold_peaks_batch(x)
        batch = peak_intervals_to_bpm_batch(rows, positions, x.shape[0], fs=32.0)
        np.testing.assert_array_equal(
            batch, self.rows_reference(rows, positions, x.shape[0], fs=32.0)
        )

    def test_band_filter_matches_scalar(self):
        # Peaks engineered so some intervals fall outside the BPM band.
        rows = np.array([0, 0, 0, 1, 1, 2])
        positions = np.array([0, 1, 33, 10, 42, 5])
        batch = peak_intervals_to_bpm_batch(rows, positions, 3, fs=32.0)
        np.testing.assert_array_equal(
            batch, self.rows_reference(rows, positions, 3, fs=32.0)
        )
        assert np.isnan(batch[2])  # single peak -> no interval

    def test_no_peaks_everywhere(self):
        out = peak_intervals_to_bpm_batch(
            np.array([], dtype=int), np.array([], dtype=int), 4, fs=32.0
        )
        assert out.shape == (4,)
        assert np.all(np.isnan(out))


class TestPeakIntervalsToBpm:
    def test_exact_rate_from_uniform_peaks(self):
        fs = 32.0
        peaks = np.arange(0, 320, 32)  # one peak per second -> 60 BPM
        assert peak_intervals_to_bpm(peaks, fs) == pytest.approx(60.0)

    def test_too_few_peaks_gives_nan(self):
        assert np.isnan(peak_intervals_to_bpm(np.array([5]), 32.0))

    def test_implausible_intervals_are_discarded(self):
        fs = 32.0
        # One valid 1-second interval plus an absurd 1-sample interval.
        peaks = np.array([0, 32, 33])
        assert peak_intervals_to_bpm(peaks, fs) == pytest.approx(60.0)

    def test_all_implausible_gives_nan(self):
        peaks = np.array([0, 1, 2])
        assert np.isnan(peak_intervals_to_bpm(peaks, 32.0))


class TestCountSignChanges:
    def test_pure_sinusoid(self):
        t = np.arange(0, 4, 1 / 32)
        x = np.sin(2 * np.pi * 1.0 * t)  # 4 cycles -> ~8 derivative sign changes
        changes = count_sign_changes(x)
        assert 7 <= changes <= 9

    def test_monotonic_has_zero(self):
        assert count_sign_changes(np.arange(50.0)) == 0

    def test_constant_has_zero(self):
        assert count_sign_changes(np.full(30, 2.0)) == 0

    def test_short_signal(self):
        assert count_sign_changes(np.array([1.0, 2.0])) == 0

    def test_faster_oscillation_has_more_changes(self):
        t = np.arange(0, 8, 1 / 32)
        slow = count_sign_changes(np.sin(2 * np.pi * 0.5 * t))
        fast = count_sign_changes(np.sin(2 * np.pi * 3.0 * t))
        assert fast > slow
