"""Tests for repro.signal.features."""

import numpy as np
import pytest

from repro.signal.features import (
    EXTENDED_FEATURE_NAMES,
    FEATURE_NAMES,
    accelerometer_features,
    extended_accelerometer_features,
    feature_vector,
    signal_energy,
)


class TestSignalEnergy:
    def test_constant_signal(self):
        assert signal_energy(np.full(10, 2.0)) == pytest.approx(4.0)

    def test_empty_signal(self):
        assert signal_energy(np.array([])) == 0.0

    def test_scales_quadratically(self):
        x = np.random.default_rng(0).normal(size=200)
        assert signal_energy(3 * x) == pytest.approx(9 * signal_energy(x))


class TestAccelerometerFeatures:
    def test_feature_count_and_names(self):
        assert len(FEATURE_NAMES) == 4
        window = np.random.default_rng(1).normal(size=(256, 3))
        assert accelerometer_features(window).shape == (4,)

    def test_known_values_on_constant_window(self):
        window = np.full((100, 3), 2.0)
        mean, energy, std, n_peaks = accelerometer_features(window)
        assert mean == pytest.approx(2.0)
        assert energy == pytest.approx(4.0)
        assert std == pytest.approx(0.0)
        assert n_peaks == 0.0

    def test_single_axis_input(self):
        window = np.sin(np.linspace(0, 8 * np.pi, 256))
        features = accelerometer_features(window)
        assert features.shape == (4,)
        assert features[3] > 0  # oscillation produces derivative sign changes

    def test_more_motion_more_std_and_energy(self):
        rng = np.random.default_rng(2)
        calm = rng.normal(0, 0.01, size=(256, 3))
        active = rng.normal(0, 0.5, size=(256, 3))
        f_calm = accelerometer_features(calm)
        f_active = accelerometer_features(active)
        assert f_active[1] > f_calm[1]  # energy
        assert f_active[2] > f_calm[2]  # std

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            accelerometer_features(np.empty((0, 3)))


class TestExtendedFeatures:
    def test_count_and_prefix(self):
        window = np.random.default_rng(3).normal(size=(128, 3))
        extended = extended_accelerometer_features(window)
        assert extended.shape == (len(EXTENDED_FEATURE_NAMES),)
        assert np.allclose(extended[:4], accelerometer_features(window))

    def test_range_is_max_minus_min(self):
        window = np.stack([np.linspace(-1, 1, 50)] * 3, axis=1)
        extended = extended_accelerometer_features(window)
        names = list(EXTENDED_FEATURE_NAMES)
        assert extended[names.index("range")] == pytest.approx(2.0)


class TestFeatureVector:
    def test_batch_shape(self):
        windows = np.random.default_rng(4).normal(size=(10, 64, 3))
        assert feature_vector(windows).shape == (10, 4)
        assert feature_vector(windows, extended=True).shape == (10, 9)

    def test_2d_batch_treated_as_single_axis(self):
        windows = np.random.default_rng(5).normal(size=(6, 64))
        assert feature_vector(windows).shape == (6, 4)

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            feature_vector(np.zeros((2, 3, 4, 5)))
