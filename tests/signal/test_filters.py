"""Tests for repro.signal.filters."""

import numpy as np
import pytest

from repro.signal.filters import (
    butter_bandpass,
    butter_bandpass_filter,
    detrend,
    fir_lowpass,
    moving_average,
    moving_average_batch,
    normalize,
    standardize,
)


class TestMovingAverage:
    def test_constant_signal_is_unchanged(self):
        x = np.full(50, 3.7)
        assert np.allclose(moving_average(x, 8), 3.7)

    def test_window_one_returns_copy(self):
        x = np.arange(10.0)
        out = moving_average(x, 1)
        assert np.array_equal(out, x)
        out[0] = 99.0
        assert x[0] == 0.0

    def test_matches_naive_rolling_mean(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100)
        window = 7
        out = moving_average(x, window)
        for i in range(window - 1, x.size):
            assert out[i] == pytest.approx(x[i - window + 1:i + 1].mean())

    def test_warmup_uses_expanding_mean(self):
        x = np.array([2.0, 4.0, 6.0, 8.0])
        out = moving_average(x, 3)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(3.0)
        assert out[2] == pytest.approx(4.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            moving_average(np.ones((4, 4)), 2)

    def test_window_longer_than_signal(self):
        x = np.array([1.0, 2.0, 3.0])
        out = moving_average(x, 10)
        assert np.allclose(out, [1.0, 1.5, 2.0])


class TestMovingAverageBatch:
    @pytest.mark.parametrize("length,window", [(16, 24), (64, 7), (256, 24), (5, 24)])
    def test_rows_bit_identical_to_scalar(self, length, window):
        rng = np.random.default_rng(length)
        x = rng.standard_normal((20, length))
        out = moving_average_batch(x, window)
        for i in range(x.shape[0]):
            np.testing.assert_array_equal(out[i], moving_average(x[i], window))

    def test_window_one_returns_copy(self):
        x = np.arange(12.0).reshape(3, 4)
        out = moving_average_batch(x, 1)
        assert np.array_equal(out, x)
        out[0, 0] = 99.0
        assert x[0, 0] == 0.0

    def test_rejects_1d_and_bad_window(self):
        with pytest.raises(ValueError):
            moving_average_batch(np.ones(5), 2)
        with pytest.raises(ValueError):
            moving_average_batch(np.ones((2, 5)), 0)


class TestButterBandpass:
    def test_passband_preserved_stopband_attenuated(self):
        fs = 32.0
        t = np.arange(0, 30, 1 / fs)
        in_band = np.sin(2 * np.pi * 1.5 * t)   # 90 BPM, inside the band
        out_band = np.sin(2 * np.pi * 8.0 * t)  # far above the band
        filtered = butter_bandpass_filter(in_band + out_band, 0.5, 3.7, fs)
        # Correlation with the in-band component should dominate.
        corr_in = np.corrcoef(filtered, in_band)[0, 1]
        corr_out = np.corrcoef(filtered, out_band)[0, 1]
        assert corr_in > 0.95
        assert abs(corr_out) < 0.2

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            butter_bandpass(3.0, 1.0, 32.0)
        with pytest.raises(ValueError):
            butter_bandpass(0.5, 20.0, 32.0)

    def test_short_signal_falls_back_to_causal(self):
        x = np.ones(10)
        out = butter_bandpass_filter(x, 0.5, 3.0, 32.0)
        assert out.shape == x.shape


class TestFirLowpass:
    def test_removes_high_frequency(self):
        fs = 32.0
        t = np.arange(0, 20, 1 / fs)
        slow = np.sin(2 * np.pi * 0.5 * t)
        fast = np.sin(2 * np.pi * 10.0 * t)
        filtered = fir_lowpass(slow + fast, cutoff=2.0, fs=fs)
        assert np.corrcoef(filtered, slow)[0, 1] > 0.95

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            fir_lowpass(np.ones(100), cutoff=20.0, fs=32.0)


class TestDetrend:
    def test_removes_linear_trend(self):
        t = np.arange(100.0)
        x = 3.0 * t + 7.0
        assert np.allclose(detrend(x), 0.0, atol=1e-8)

    def test_preserves_oscillation(self):
        t = np.arange(200.0)
        osc = np.sin(2 * np.pi * t / 20)
        x = osc + 0.05 * t
        out = detrend(x)
        assert np.corrcoef(out, osc)[0, 1] > 0.99

    def test_short_signal(self):
        assert detrend(np.array([5.0])).shape == (1,)


class TestNormalize:
    def test_max_abs_is_one(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=64) * 17.0
        assert np.max(np.abs(normalize(x))) == pytest.approx(1.0)

    def test_zero_signal_stays_zero(self):
        assert np.all(normalize(np.zeros(10)) == 0.0)


class TestStandardize:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(4)
        x = rng.normal(5.0, 3.0, size=500)
        out = standardize(x)
        assert out.mean() == pytest.approx(0.0, abs=1e-9)
        assert out.std() == pytest.approx(1.0, rel=1e-4)

    def test_batch_axis_handling(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(8, 100)) * np.arange(1, 9)[:, None]
        out = standardize(x, axis=-1)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=-1), 1.0, rtol=1e-3)

    def test_constant_signal_does_not_blow_up(self):
        out = standardize(np.full(20, 2.0))
        assert np.all(np.isfinite(out))
        assert np.allclose(out, 0.0)
