"""Checker tests over the planted-violation fixture corpus.

Every violating line in ``fixtures/`` carries a ``# PLANT: <code>``
marker (``x<n>`` when one line yields several findings of that code).
The tests derive the expected ``(file, line, code)`` multiset from the
markers and require the lint report to match it *exactly* — no missed
plants, no spurious findings, correct anchor lines.
"""

from __future__ import annotations

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint
from repro.analysis.engine import BatchTwin, Pragma, parse_pragmas

FIXTURES = Path(__file__).parent / "fixtures"

_MARKER = re.compile(r"#\s*PLANT:\s*(REP\d{3})(?:\s*x(\d+))?")

DIRTY_BY_RULE = {
    "REP001": "dtype_dirty.py",
    "REP002": "lock_dirty.py",
    "REP003": "hotpath_dirty.py",
    "REP004": "contract_dirty.py",
    "REP005": "persistence_dirty.py",
    "REP006": "lockorder_dirty.py",
    "REP007": "dtypeflow_dirty.py",
    "REP008": "lifecycle_dirty.py",
}
CLEAN_TWINS = (
    "dtype_clean.py",
    "lock_clean.py",
    "hotpath_clean.py",
    "contract_clean.py",
    "persistence_clean.py",
    "lockorder_clean.py",
    "dtypeflow_clean.py",
    "lifecycle_clean.py",
)


def fixture_config() -> LintConfig:
    return LintConfig(
        root=FIXTURES,
        dtype_modules=(
            "dtype_clean.py",
            "dtype_dirty.py",
            "dtypeflow_clean.py",
            "dtypeflow_dirty.py",
        ),
        lock_modules=(
            "lock_clean.py",
            "lock_dirty.py",
            "lockorder_clean.py",
            "lockorder_dirty.py",
        ),
        batch_twins=(
            BatchTwin("contract_dirty.py", "scalar_fn", "scalar_fn_batch"),
            BatchTwin("contract_dirty.py", "other_fn", "other_fn_batch"),
            BatchTwin("contract_clean.py", "scale_rows", "scale_rows_batch"),
        ),
        persistence_modules=("persistence_clean.py", "persistence_dirty.py"),
        lifecycle_modules=("lifecycle_clean.py", "lifecycle_dirty.py"),
        baseline_path=None,
    )


def planted_expectations() -> Counter:
    expected: Counter = Counter()
    for path in sorted(FIXTURES.glob("*.py")):
        for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            match = _MARKER.search(line)
            if match:
                expected[(path.name, lineno, match.group(1))] += int(match.group(2) or 1)
    return expected


@pytest.fixture(scope="module")
def report():
    return run_lint(fixture_config())


def test_fixture_corpus_is_nonempty():
    expected = planted_expectations()
    assert expected, "fixture corpus lost its PLANT markers"
    assert set(DIRTY_BY_RULE) == {code for (_, _, code) in expected}


def test_planted_violations_detected_exactly(report):
    actual = Counter((f.file, f.line, f.code) for f in report.new)
    assert actual == planted_expectations()


def test_clean_twins_have_no_findings(report):
    clean_hits = [f for f in report.new if f.file in CLEAN_TWINS]
    assert clean_hits == []


@pytest.mark.parametrize("code,filename", sorted(DIRTY_BY_RULE.items()))
def test_each_dirty_twin_trips_only_its_rule(report, code, filename):
    codes_in_file = {f.code for f in report.new if f.file == filename}
    assert codes_in_file == {code}


def test_lint_ok_suppresses_inline(report):
    # dtype_dirty.suppressed_promotion carries `# lint-ok: REP001`.
    suppressed_lines = [
        lineno
        for lineno, line in enumerate(
            (FIXTURES / "dtype_dirty.py").read_text(encoding="utf-8").splitlines(), 1
        )
        if "lint-ok" in line
    ]
    assert suppressed_lines, "fixture lost its lint-ok line"
    flagged = {f.line for f in report.new if f.file == "dtype_dirty.py"}
    assert not flagged.intersection(suppressed_lines)


def test_findings_carry_messages_and_sort(report):
    assert all(f.message for f in report.new)
    keys = [(f.file, f.line) for f in report.new]
    assert keys == sorted(keys)


# ----------------------------------------------------------- pragma parsing
def test_parse_pragmas_grammar():
    source = (
        "x = 1  # guarded-by: _lock, _arrivals\n"
        "def f():  # unguarded-ok: strict\n"
        "    pass\n"
        "def g(\n"
        "    a,\n"
        "):  # hot-path\n"
        "    for i in a:  # loop-ok: per chunk\n"
        "        pass\n"
        "y = '# guarded-by: not_a_pragma'\n"
        "z = 2  # lint-ok\n"
        "# the hot-path is described here, prose does not match\n"
        "# lock-order: _meta < _data, _meta < _log\n"
        "h = open('x')  # lifecycle-ok: ownership transfers\n"
    )
    pragmas = {(p.kind, p.line): p for p in parse_pragmas(source)}
    assert pragmas[("guarded-by", 1)].args == ("_lock", "_arrivals")
    assert pragmas[("unguarded-ok", 2)].args == ("strict",)
    assert ("hot-path", 6) in pragmas  # on the closing line of a multi-line header
    assert pragmas[("loop-ok", 7)].reason == "per chunk"
    assert pragmas[("lint-ok", 10)].args == ()
    assert pragmas[("lock-order", 12)].args == ("_meta", "_data", "_meta", "_log")
    assert pragmas[("lifecycle-ok", 13)].reason == "ownership transfers"
    # Strings and prose must not parse as pragmas.
    assert not any(p.line in (9, 11) for p in pragmas.values())
    assert isinstance(next(iter(pragmas.values())), Pragma)


# ------------------------------------------------- real-repo annotations
def test_real_scheduler_and_registry_declarations_present():
    """The satellite-audit pragmas on the threaded modules must not rot."""
    import ast

    from repro.analysis.engine import default_config, load_module
    from repro.analysis.lock_discipline import collect_guarded_declarations

    config = default_config()
    scheduler = load_module(config.root, config.root / "core" / "scheduler.py")
    cls = next(
        n for n in ast.walk(scheduler.tree)
        if isinstance(n, ast.ClassDef) and n.name == "FleetScheduler"
    )
    guarded = collect_guarded_declarations(scheduler, cls)
    assert set(guarded) == {
        "_pending", "_active_ids", "_unresolved", "_closed", "_paused", "_corrupted",
        # Serving/latency state added with the deadline policy (PR 10).
        "_streams", "_free_slots", "_dispatch_latencies", "_complete_latencies",
        "_deadline_misses", "_batch_windows",
    }
    assert all(locks == frozenset({"_lock", "_arrivals", "_resolved"}) for locks in guarded.values())

    platform = load_module(config.root, config.root / "hw" / "platform.py")
    registry = next(
        n for n in ast.walk(platform.tree)
        if isinstance(n, ast.ClassDef) and n.name == "CostTableRegistry"
    )
    guarded = collect_guarded_declarations(platform, registry)
    assert set(guarded) == {"_tables", "strict"}


def test_real_hot_path_marks_present():
    from repro.analysis.engine import default_config, iter_python_files, load_module

    config = default_config()
    marked = 0
    for path in iter_python_files(config.root):
        module = load_module(config.root, path)
        marked += len(module.pragmas.all("hot-path"))
    assert marked >= 10, f"hot-path annotations dropped to {marked}"
