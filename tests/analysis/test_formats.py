"""Output-format tests: GitHub workflow-command and SARIF reporters,
both at the function level (exact escaping, structure) and through the
CLI against a tree with a planted finding."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.analysis import RULE_DESCRIPTIONS, format_github, format_sarif
from repro.analysis.engine import Finding, LintReport

SRC_DIR = Path(repro.__file__).resolve().parents[1]

PLANTED_SOURCE = "import numpy as np\n\ndef f(n):\n    return np.zeros(n)\n"


def _report_with(*findings: Finding) -> LintReport:
    return LintReport(findings=list(findings), new=list(findings), n_files=1)


def test_format_github_emits_one_error_per_finding():
    report = _report_with(
        Finding("nn/layers.py", 4, "REP001", "dtype-less np.zeros defaults to float64"),
        Finding("core/fleet.py", 9, "REP008", "'open(...)' in f is not released on every path"),
    )
    lines = format_github(report).splitlines()
    assert lines[0] == (
        "::error file=nn/layers.py,line=4,title=REP001"
        "::dtype-less np.zeros defaults to float64"
    )
    assert lines[1].startswith("::error file=core/fleet.py,line=9,title=REP008::")


def test_format_github_escapes_workflow_command_metacharacters():
    report = _report_with(
        Finding("a,b:c.py", 1, "REP003", "50% slower\nsee: docs, line 2")
    )
    (line,) = format_github(report).splitlines()
    # Properties additionally escape ':' and ','; the message only %, \r, \n.
    assert "file=a%2Cb%3Ac.py" in line
    assert line.endswith("::50%25 slower%0Asee: docs, line 2")


def test_format_github_clean_report_is_empty():
    assert format_github(LintReport(n_files=3)) == ""


def test_format_sarif_structure():
    report = _report_with(
        Finding("nn/layers.py", 4, "REP001", "dtype-less np.zeros"),
        Finding("nn/layers.py", 7, "REP001", "np.float64 reference"),
        Finding("core/fleet.py", 9, "REP008", "leaked pool"),
    )
    log = json.loads(format_sarif(report))
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert [r["id"] for r in driver["rules"]] == ["REP001", "REP008"]
    assert all(
        r["shortDescription"]["text"] == RULE_DESCRIPTIONS[r["id"]]
        for r in driver["rules"]
    )
    assert len(run["results"]) == 3
    first = run["results"][0]
    assert first["ruleId"] == "REP001"
    assert driver["rules"][first["ruleIndex"]]["id"] == "REP001"
    assert first["level"] == "error"
    loc = first["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "nn/layers.py"
    assert loc["region"]["startLine"] == 4


def _run_cli(tmp_path: Path, fmt: str) -> subprocess.CompletedProcess:
    dirty = tmp_path / "nn"
    dirty.mkdir(exist_ok=True)
    (dirty / "layers.py").write_text(PLANTED_SOURCE, encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [
            sys.executable, "-m", "repro.analysis",
            "--root", str(tmp_path), "--no-baseline", "--format", fmt,
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )


def test_cli_format_github_on_dirty_tree(tmp_path):
    proc = _run_cli(tmp_path, "github")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "::error file=nn/layers.py,line=4,title=REP001::" in proc.stdout


def test_cli_format_sarif_on_dirty_tree(tmp_path):
    proc = _run_cli(tmp_path, "sarif")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    log = json.loads(proc.stdout)
    hits = [
        r for r in log["runs"][0]["results"]
        if r["ruleId"] == "REP001"
        and r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"] == "nn/layers.py"
    ]
    assert len(hits) == 1
    assert hits[0]["locations"][0]["physicalLocation"]["region"]["startLine"] == 4
