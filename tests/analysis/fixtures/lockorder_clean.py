"""REP006 fixture (clean twin): every mutex registered, nesting follows
the declared transitive order, Condition aliases canonicalize, and
re-entry only happens on the RLock."""

import threading


class Pipeline:
    # lock-order: _meta < _data < _log

    def __init__(self):
        self._meta = threading.RLock()
        self._data = threading.Lock()
        self._log = threading.Lock()
        self._meta_cv = threading.Condition(self._meta)

    def update(self):
        with self._meta:
            with self._data:
                with self._log:
                    pass

    def grab_log(self):
        with self._log:
            pass

    def nested_via_helper(self):
        # Helper-call acquisition in the declared direction.
        with self._data:
            self.grab_log()

    def reentrant_rlock(self):
        # The Condition aliases the RLock; re-entry on an RLock is safe.
        with self._meta:
            with self._meta_cv:
                pass

    def transitive_skip(self):
        # _meta < _log follows transitively from _meta < _data < _log.
        with self._meta:
            with self._log:
                pass
