"""REP004 fixture (dirty twin): broken equivalence contracts.

Defines its own ``HeartRatePredictor`` root so the class-graph closure
runs entirely inside the fixture corpus.  The twin-pair registry for
this module (configured in the test) names ``scalar_fn``/``scalar_fn_batch``
(batch missing) and ``other_fn``/``other_fn_batch`` (default mismatch).
"""


class HeartRatePredictor:
    FLEET_BATCHABLE = False
    TOLERANCE_FUSABLE = False

    def predict_fleet(self, ppg, accel=None, subject_index=None, state=None):
        subject_index = self._check_fleet_stack(len(ppg), subject_index, state)
        return ppg

    def _check_fleet_stack(self, n, subject_index, state):
        return subject_index


class MissingFlags(HeartRatePredictor):  # PLANT: REP004 x2
    """Declares neither flag: two findings, one per missing flag."""


class BadFleetOverride(HeartRatePredictor):
    FLEET_BATCHABLE = True
    TOLERANCE_FUSABLE = False

    def predict_fleet(self, ppg, accel=None, subject_index=None, state=None):  # PLANT: REP004
        return [p * 2.0 for p in ppg]


class IndirectlyBad(BadFleetOverride):  # PLANT: REP004 x2
    """Transitive subclass missing both flags — the closure must reach it."""


def scalar_fn(x, scale=2.0):  # PLANT: REP004
    # The registry names scalar_fn_batch, which does not exist.
    return x * scale


def other_fn(x, scale=2.0):
    return x * scale


def other_fn_batch(xs, scale=3.0):  # PLANT: REP004
    # Default for ``scale`` disagrees with other_fn.
    return [x * scale for x in xs]
