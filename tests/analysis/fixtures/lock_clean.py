"""REP002 fixture (clean twin): every guarded access holds a declared lock
(or is exempted the documented way)."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()  # lock-order: _lock
        self._cond = threading.Condition(self._lock)
        self._tables = {}  # guarded-by: _lock, _cond
        self._closed = False  # guarded-by: _lock, _cond
        self.strict = False  # guarded-by: _lock

    def fill(self, key, value):
        with self._lock:
            self._tables[key] = value

    def snapshot(self):
        with self._lock:
            return dict(self._tables)

    def drain(self):
        # A Condition alias of the mutex satisfies the guard.
        with self._cond:
            while not self._closed:
                self._cond.wait()
            return dict(self._tables)

    def lookup(self, key):  # unguarded-ok: strict
        if self.strict:
            raise KeyError(key)
        with self._lock:
            return self._tables.get(key)

    def _resolve_locked(self):  # unguarded-ok
        # Caller-holds-the-lock helper: bare pragma exempts the method.
        self._closed = True
        return self._tables

    def refresh(self, key, value):
        # Bare acquire paired with a release in the finally: held span.
        self._lock.acquire()
        try:
            self._tables[key] = value
        finally:
            self._lock.release()

    def tick(self, key):
        # Bare acquire paired with a same-level release.
        self._lock.acquire()
        self._tables[key] = self._tables.get(key, 0) + 1
        self._lock.release()
