"""REP005 fixture (dirty twin): torn-write hazards in a persistence module.

Every flagged line commits durable state without the atomic
temp-file-then-``os.replace`` dance: a crash mid-write leaves a
half-visible journal/manifest that a resumed run would trust.
"""

import json
from pathlib import Path


def save_manifest(path, manifest):
    with open(path, "w", encoding="utf-8") as handle:  # PLANT: REP005
        json.dump(manifest, handle)


def append_journal_entry(path, line):
    with open(path, mode="a", encoding="utf-8") as handle:  # PLANT: REP005
        handle.write(line + "\n")


def save_blob(path, payload):
    with open(path, "wb") as handle:  # PLANT: REP005
        handle.write(payload)


def rewrite(path, mode, text):
    # Dynamic mode expression: judged conservatively as a write.
    with open(path, mode) as handle:  # PLANT: REP005
        handle.write(text)


def save_via_pathlib(path, manifest):
    Path(path).write_text(json.dumps(manifest), encoding="utf-8")  # PLANT: REP005


def save_bytes_via_pathlib(path, payload):
    Path(path).write_bytes(payload)  # PLANT: REP005
