"""REP008 fixture (dirty twin): resources leaked on exception paths — a
shared-memory segment whose close merely *follows* the use, a pool with
no shutdown, a temp file outside any with-block, and an ownership
transfer with no ``# lifecycle-ok`` escape.  Parsed, never imported.
"""

import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory


def leak_segment(name, payload):
    seg = shared_memory.SharedMemory(name=name)  # PLANT: REP008
    # An exception here leaks the segment: the close below never runs.
    seg.buf[: len(payload)] = payload
    seg.close()


def leak_pool(jobs):
    pool = ProcessPoolExecutor(max_workers=2)  # PLANT: REP008
    return [future.result() for future in [pool.submit(job) for job in jobs]]


def leak_scratch_file(rows):
    handle = tempfile.NamedTemporaryFile(delete=False)  # PLANT: REP008
    for row in rows:
        handle.write(row)
    return handle.name


class Runner:
    def __init__(self):
        self._pool = ThreadPoolExecutor(max_workers=2)  # PLANT: REP008
