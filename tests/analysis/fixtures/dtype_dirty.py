"""REP001 fixture (dirty twin): dtype-undisciplined allocations.

Each violating line carries a ``# PLANT: <code>`` marker; the test
derives the expected (line, code) pairs from these markers so the
assertions survive fixture edits.  This module is only ever *parsed* by
the lint engine, never imported.
"""

import numpy as np


def alloc_without_dtype(n):
    buf = np.zeros(n)  # PLANT: REP001
    idx = np.arange(n)  # PLANT: REP001
    filled = np.full(n, -1.0)  # PLANT: REP001
    return buf, idx, filled


def promote_to_float64(x):
    y = x.astype(float)  # PLANT: REP001
    z = np.empty(x.shape, dtype=np.float64)  # PLANT: REP001
    return y + z


def suppressed_promotion(x):
    # An inline lint-ok keeps a justified exception out of the report.
    return np.ones(x.shape)  # lint-ok: REP001
