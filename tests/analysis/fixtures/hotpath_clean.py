"""REP003 fixture (clean twin): vectorized hot paths, plus a blessed
coarse-grained loop."""

import numpy as np


def rolling_mean(x, w):  # hot-path
    cumsum = np.cumsum(x)
    head = cumsum[:w] / np.arange(1, min(w, x.size) + 1, dtype=x.dtype)
    tail = (cumsum[w:] - cumsum[:-w]) / w
    return np.concatenate([head, tail])


def chunked_forward(batch, batch_size=64):  # hot-path
    outputs = []
    for start in range(0, batch.shape[0], batch_size):  # loop-ok: per chunk, not per element
        outputs.append(batch[start:start + batch_size] * 2.0)
    return np.concatenate(outputs)
