"""REP003 fixture (dirty twin): loops and per-element accumulation in
functions marked ``# hot-path``."""

import numpy as np


def rolling_mean(x, w):  # hot-path
    out = []
    for i in range(len(x)):  # PLANT: REP003
        out.append(x[max(0, i - w):i + 1].mean())  # PLANT: REP003
    return np.asarray(out)


def grow(x):  # hot-path
    acc = np.empty(0, dtype=x.dtype)
    while acc.size < x.size:  # PLANT: REP003
        acc = np.append(acc, x[acc.size])  # PLANT: REP003
    return acc


def unmarked(x):
    # No hot-path pragma: loops here are legal.
    total = 0.0
    for value in x:
        total += value
    return total
