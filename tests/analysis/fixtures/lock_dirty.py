"""REP002 fixture (dirty twin): guarded state touched outside its lock.

``snapshot`` is a regression note from the satellite audit of the real
threaded modules: serialization/snapshot paths are where unlocked reads
of guarded state hide (``CostTableRegistry.__getstate__`` snapshots its
tables *under* the lock for exactly this reason, and the registry's
``strict`` fast-path read is pragma-documented) — the checker must catch
the unlocked variant.
"""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()  # lock-order: _lock
        self._cond = threading.Condition(self._lock)
        self._tables = {}  # guarded-by: _lock, _cond
        self._closed = False  # guarded-by: _lock, _cond

    def fill(self, key, value):
        with self._lock:
            self._tables[key] = value

    def snapshot(self):
        return dict(self._tables)  # PLANT: REP002

    def close(self):
        self._closed = True  # PLANT: REP002

    def drain(self):
        with self._cond:
            while not self._closed:
                self._cond.wait()
        return self._tables  # PLANT: REP002

    def leak_lock(self, key, value):
        self._lock.acquire()  # PLANT: REP002
        self._tables[key] = value

    def double_release(self):
        self._lock.release()  # PLANT: REP002
