"""REP005 fixture (clean twin): durable state committed atomically.

Reads are unrestricted; the only raw writes live inside the blessed
``atomic_*`` helpers, exactly as in ``repro.core.checkpoint``.
"""

import json
import os


def atomic_write_bytes(path, payload):
    # The blessed helper: the raw write is allowed here by name.
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _atomic_rewrite(path, text):
    with open(path + ".tmp", "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(path + ".tmp", path)


def load_manifest(path):
    # Default mode is "r": reads never trip the rule.
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def load_journal(path):
    with open(path, "rb") as handle:
        return handle.read()


def save_manifest(path, manifest):
    atomic_write_bytes(path, json.dumps(manifest).encode("utf-8"))
