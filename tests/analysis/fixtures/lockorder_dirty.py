"""REP006 fixture (dirty twin): lock-order violations the call-graph pass
must catch — a declaration cycle, an unregistered mutex, direct and
helper-call order reversals, undeclared nesting, and re-entry on a
non-reentrant lock.  This module is only ever *parsed* by the lint
engine, never imported.
"""

import threading


class Pipeline:
    # lock-order: _meta < _data, _meta < _log
    # lock-order: _data < _meta  # PLANT: REP006

    def __init__(self):
        self._meta = threading.Lock()
        self._data = threading.Lock()
        self._log = threading.Lock()
        self._stats = threading.Lock()  # PLANT: REP006
        self._meta_cv = threading.Condition(self._meta)

    def update(self):
        # Declared order: fine.
        with self._meta:
            with self._data:
                pass

    def reversed_direct(self):
        with self._data:
            with self._meta:  # PLANT: REP006
                pass

    def undeclared_pair(self):
        with self._data:
            with self._log:  # PLANT: REP006
                pass

    def grab_meta(self):
        with self._meta:
            pass

    def reversed_via_helper(self):
        with self._data:
            self.grab_meta()  # PLANT: REP006

    def reentrant_plain_lock(self):
        with self._meta:
            with self._meta_cv:  # PLANT: REP006
                pass
