"""REP007 fixture (clean twin): helpers thread the caller's dtype through
(or coerce caller input at the documented boundary), so the dtype-aware
callers inherit instead of re-promoting."""

import numpy as np

from repro.dtypes import resolve_dtype


def _grid(n, dtype):
    return np.arange(n, dtype=dtype)


def _scratch(n, dtype):
    buf = np.zeros(n, dtype=dtype)
    return buf


def window_positions(n, dtype=None):
    dt = resolve_dtype(dtype)
    grid = _grid(n, dt)
    return grid / n


def scratch_rows(n, dtype=None):
    dt = resolve_dtype(dtype)
    return _scratch(n, dt)


def boundary(values, dtype=None):
    dt = resolve_dtype(dtype)
    # Boundary coercion of caller input — the documented entry contract,
    # exempt from the float64-pin fact.
    arr = np.asarray(values, dtype=float)
    return arr.astype(dt, copy=False)
