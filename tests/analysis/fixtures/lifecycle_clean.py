"""REP008 fixture (clean twin): every resource is released on all paths —
try/finally, with-blocks, or a documented ownership transfer."""

import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory


def copy_segment(name, payload):
    seg = shared_memory.SharedMemory(name=name)
    try:
        seg.buf[: len(payload)] = payload
    finally:
        seg.close()
        seg.unlink()


def run_jobs(jobs):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return [future.result() for future in [pool.submit(job) for job in jobs]]


def scratch_file(rows):
    with tempfile.NamedTemporaryFile() as handle:
        for row in rows:
            handle.write(row)
        return handle.name


def transfer_pool():
    return ThreadPoolExecutor(max_workers=2)  # lifecycle-ok: ownership transfers to the caller, which shuts it down
