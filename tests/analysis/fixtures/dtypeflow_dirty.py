"""REP007 fixture (dirty twin): float64-pinned helpers feeding dtype-aware
callers.  The pins use forms REP001 deliberately ignores (``dtype=float``
and string dtype keywords on non-boundary allocations), so only the
interprocedural pass can see them — including through a ``return
helper(...)`` chain.  Parsed, never imported.
"""

import numpy as np

from repro.dtypes import resolve_dtype


def _pinned_grid(n):
    return np.arange(n, dtype="float64")


def _pinned_scratch(n):
    buf = np.zeros(n, dtype="float64")
    return buf


def _grid_via_chain(n):
    # Propagates _pinned_grid's float64 fact one call deeper.
    return _pinned_grid(n)


def window_positions(n, dtype=None):
    dt = resolve_dtype(dtype)
    grid = _pinned_grid(n)  # PLANT: REP007
    return (grid / n).astype(dt, copy=False)


def scratch_rows(n, dtype=None):
    dt = resolve_dtype(dtype)
    buf = _pinned_scratch(n)  # PLANT: REP007
    return buf.astype(dt, copy=False)


def chained_positions(n):
    dt = resolve_dtype(None)
    grid = _grid_via_chain(n)  # PLANT: REP007
    return (grid * 2).astype(dt, copy=False)
