"""REP004 fixture (clean twin): contracts held.

``GoodPredictor``/``DelegatingPredictor`` subclass the root defined in
``contract_dirty.py`` (the class graph is name-based across the whole
fixture corpus), declare both flags, and handle fleet state the two
accepted ways.  The twin pair ``scale_rows``/``scale_rows_batch`` is
complete with matching defaults.
"""


class GoodPredictor(HeartRatePredictor):  # noqa: F821 - resolved by name in the lint class graph
    FLEET_BATCHABLE = True
    TOLERANCE_FUSABLE = False

    def predict_fleet(self, ppg, accel=None, subject_index=None, state=None):
        subject_index = self._check_fleet_stack(len(ppg), subject_index, state)
        return ppg


class DelegatingPredictor(GoodPredictor):
    FLEET_BATCHABLE = True
    TOLERANCE_FUSABLE = True

    def predict_fleet(self, ppg, accel=None, subject_index=None, state=None):
        return super().predict_fleet(ppg, accel, subject_index, state)


class Unrelated:
    """Not in the predictor hierarchy: never checked."""


def scale_rows(x, scale=2.0):
    return x * scale


def scale_rows_batch(xs, scale=2.0):
    return [x * scale for x in xs]
