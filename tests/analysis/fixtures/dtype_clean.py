"""REP001 fixture (clean twin): every allocation inherits or states its dtype."""

import numpy as np


def alloc_with_dtype(x, n):
    buf = np.zeros(n, dtype=x.dtype)
    idx = np.arange(n, dtype=np.intp)
    filled = np.full(n, -1.0, dtype=x.dtype)
    like = np.empty_like(x)  # *_like inherits the dtype, never flagged
    return buf, idx, filled, like


def boundary_coercion(x):
    # dtype=float at a public input boundary is the documented entry
    # contract, not a mid-pipeline widening — deliberately not flagged.
    return np.asarray(x, dtype=float)
