"""Tier-1 gate: the repo must lint clean (modulo the committed baseline).

This is the CI wiring of the invariant linter: a REP001-REP008 violation
anywhere under ``src/repro`` fails the ordinary
``PYTHONPATH=src python -m pytest`` run with the offending file:line in
the assertion message.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.analysis import default_config, format_text, run_lint

SRC_DIR = Path(repro.__file__).resolve().parents[1]


def test_repo_is_lint_clean():
    report = run_lint(default_config())
    assert report.n_files > 0
    assert report.new == [], "new lint findings:\n" + format_text(report)


def test_baseline_has_no_stale_entries():
    """Paid-down debt must be removed from the baseline, not forgotten."""
    report = run_lint(default_config())
    assert report.unused_baseline == [], (
        "stale baseline entries (regenerate with "
        "`python -m repro.analysis --write-baseline`):\n" + format_text(report)
    )


def test_lint_runtime_under_budget():
    """Both passes over the whole repo stay inside the budget — cold
    (parse + summarize every module) and warm (per-file caches keyed on
    mtime/size make the second run mostly stat calls)."""
    from repro.analysis import clear_caches

    clear_caches()
    start = time.perf_counter()
    run_lint(default_config())
    cold = time.perf_counter() - start
    assert cold < 5.0, f"cold lint took {cold:.2f}s (budget: 5s)"

    start = time.perf_counter()
    run_lint(default_config())
    warm = time.perf_counter() - start
    assert warm < 5.0, f"warm lint took {warm:.2f}s (budget: 5s)"


def test_parse_cache_is_deterministic():
    """An unchanged file must hit the cache: same ParsedModule object."""
    from repro.analysis.engine import load_module

    config = default_config()
    path = config.root / "core" / "scheduler.py"
    assert load_module(config.root, path) is load_module(config.root, path)


def test_cli_json_output_is_machine_readable():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--json"],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["clean"] is True
    assert payload["new"] == []
    assert payload["files_scanned"] > 0
    assert isinstance(payload["baselined"], list)


def test_cli_exit_codes_on_dirty_tree(tmp_path):
    """--root pointed at a dirty tree exits 1 and names the finding."""
    dirty = tmp_path / "nn"
    dirty.mkdir()
    # A file at one of the configured REP001 module paths.
    (dirty / "layers.py").write_text(
        "import numpy as np\n\ndef f(n):\n    return np.zeros(n)\n",
        encoding="utf-8",
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.analysis",
            "--root", str(tmp_path), "--no-baseline", "--json",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["clean"] is False
    # The sparse tree also (correctly) trips REP004 for the batch-twin
    # modules missing from the scan root; the planted REP001 must be
    # found at its exact location regardless.
    rep001 = [f for f in payload["new"] if f["code"] == "REP001"]
    assert [(f["file"], f["line"]) for f in rep001] == [("nn/layers.py", 4)]
