"""Baseline round-trip: add -> suppress -> remove, plus stale detection."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import LintConfig, load_baseline, run_lint, write_baseline

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def sandbox(tmp_path):
    """A private scan root holding only the dtype dirty twin."""
    shutil.copy(FIXTURES / "dtype_dirty.py", tmp_path / "dtype_dirty.py")
    return tmp_path


def sandbox_config(root: Path) -> LintConfig:
    return LintConfig(
        root=root,
        dtype_modules=("dtype_dirty.py",),
        lock_modules=(),
        batch_twins=(),
        baseline_path=root / "baseline.json",
    )


def test_missing_baseline_reports_everything_new(sandbox):
    report = run_lint(sandbox_config(sandbox))
    assert report.new and report.new == report.findings
    assert not report.baselined and not report.unused_baseline


def test_write_then_rerun_suppresses_all(sandbox):
    config = sandbox_config(sandbox)
    first = run_lint(config)
    write_baseline(first.findings, config.baseline_path)

    second = run_lint(config)
    assert second.clean
    assert second.new == []
    assert second.baselined == first.findings
    # The file round-trips through the loader as an exact multiset.
    assert load_baseline(config.baseline_path) == {
        key: sum(1 for f in first.findings if f.key() == key)
        for key in {f.key() for f in first.findings}
    }


def test_removed_entry_resurfaces_exactly_that_finding(sandbox):
    config = sandbox_config(sandbox)
    first = run_lint(config)
    write_baseline(first.findings, config.baseline_path)

    payload = json.loads(config.baseline_path.read_text())
    dropped = payload["findings"].pop(0)
    config.baseline_path.write_text(json.dumps(payload))

    report = run_lint(config)
    assert len(report.new) == 1
    resurfaced = report.new[0]
    assert (resurfaced.file, resurfaced.code, resurfaced.message) == (
        dropped["file"], dropped["code"], dropped["message"],
    )


def test_stale_entry_is_reported_not_fatal(sandbox):
    config = sandbox_config(sandbox)
    first = run_lint(config)
    write_baseline(first.findings, config.baseline_path)

    payload = json.loads(config.baseline_path.read_text())
    payload["findings"].append(
        {"file": "dtype_dirty.py", "code": "REP001", "message": "no longer exists"}
    )
    config.baseline_path.write_text(json.dumps(payload))

    report = run_lint(config)
    assert report.clean  # stale entries alone do not fail the run
    assert report.unused_baseline == [("dtype_dirty.py", "REP001", "no longer exists")]


def test_fixed_finding_goes_stale(sandbox):
    config = sandbox_config(sandbox)
    write_baseline(run_lint(config).findings, config.baseline_path)

    # "Fix" every violation by replacing the module with a clean twin.
    shutil.copy(FIXTURES / "dtype_clean.py", sandbox / "dtype_dirty.py")
    report = run_lint(config)
    assert report.new == [] and report.baselined == []
    assert report.unused_baseline  # the whole baseline is now stale
