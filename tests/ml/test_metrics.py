"""Tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    binary_accuracy_at_threshold,
    confusion_matrix,
    macro_f1_score,
    mean_absolute_error,
    rmse,
)


class TestAccuracy:
    def test_perfect_and_zero(self):
        y = np.array([0, 1, 2, 1])
        assert accuracy_score(y, y) == 1.0
        assert accuracy_score(y, (y + 1) % 3) == 0.0

    def test_partial(self):
        assert accuracy_score(np.array([0, 1, 1, 0]), np.array([0, 1, 0, 1])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([1, 2]), np.array([1]))

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))


class TestRegressionMetrics:
    def test_mae_known_value(self):
        assert mean_absolute_error(np.array([70.0, 80.0]), np.array([72.0, 76.0])) == pytest.approx(3.0)

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        y = rng.normal(70, 10, size=100)
        p = y + rng.normal(0, 5, size=100)
        assert rmse(y, p) >= mean_absolute_error(y, p)

    def test_zero_error(self):
        y = np.array([60.0, 70.0])
        assert mean_absolute_error(y, y) == 0.0
        assert rmse(y, y) == 0.0


class TestConfusionMatrix:
    def test_counts(self):
        y_true = np.array([0, 0, 1, 1, 2])
        y_pred = np.array([0, 1, 1, 1, 0])
        matrix = confusion_matrix(y_true, y_pred)
        assert matrix.shape == (3, 3)
        assert matrix[0, 0] == 1
        assert matrix[0, 1] == 1
        assert matrix[1, 1] == 2
        assert matrix[2, 0] == 1
        assert matrix.sum() == y_true.size

    def test_explicit_n_classes(self):
        matrix = confusion_matrix(np.array([0, 1]), np.array([1, 0]), n_classes=5)
        assert matrix.shape == (5, 5)

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([-1, 0]), np.array([0, 0]))


class TestMacroF1:
    def test_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1_score(y, y) == pytest.approx(1.0)

    def test_all_wrong(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([1, 1, 0, 0])
        assert macro_f1_score(y_true, y_pred) == 0.0

    def test_imbalanced_classes_penalized(self):
        # Classifier that always predicts the majority class.
        y_true = np.array([0] * 9 + [1])
        y_pred = np.zeros(10, dtype=int)
        assert macro_f1_score(y_true, y_pred) < 0.6


class TestBinaryAccuracyAtThreshold:
    def test_perfect_when_difficulties_match(self):
        d = np.array([1, 3, 5, 9])
        assert binary_accuracy_at_threshold(d, d, threshold=4) == 1.0

    def test_only_boundary_crossings_matter(self):
        true = np.array([2, 8])
        pred = np.array([3, 9])  # wrong levels but same side of threshold 5
        assert binary_accuracy_at_threshold(true, pred, threshold=5) == 1.0

    def test_crossing_counts_as_error(self):
        true = np.array([4, 6])
        pred = np.array([6, 4])
        assert binary_accuracy_at_threshold(true, pred, threshold=5) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary_accuracy_at_threshold(np.array([1, 2]), np.array([1]), threshold=3)
