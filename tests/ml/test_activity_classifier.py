"""Tests for the CHRIS activity recognizer (difficulty detector)."""

import numpy as np
import pytest

from repro.data.activities import Activity, difficulty_of
from repro.ml.activity_classifier import DEFAULT_RF_PARAMS, ActivityClassifier


class TestConfiguration:
    def test_paper_hyperparameters(self):
        # 8 trees, maximum depth 5 (paper Sec. III-C).
        assert DEFAULT_RF_PARAMS == {"n_estimators": 8, "max_depth": 5}
        classifier = ActivityClassifier()
        assert classifier.n_estimators == 8
        assert classifier.max_depth == 5

    def test_feature_extraction_shape(self, small_dataset):
        subject = small_dataset.subjects[0]
        classifier = ActivityClassifier()
        features = classifier.extract_features(subject.accel_windows)
        assert features.shape == (subject.n_windows, 4)
        extended = ActivityClassifier(extended_features=True).extract_features(
            subject.accel_windows
        )
        assert extended.shape == (subject.n_windows, 9)


class TestTrainingAndAccuracy:
    def test_fit_predict_shapes(self, trained_activity_classifier, small_dataset):
        subject = small_dataset.subjects[1]
        activities = trained_activity_classifier.predict_activity(subject.accel_windows)
        difficulties = trained_activity_classifier.predict_difficulty(subject.accel_windows)
        assert activities.shape == (subject.n_windows,)
        assert difficulties.shape == (subject.n_windows,)
        assert np.all((difficulties >= 1) & (difficulties <= 9))

    def test_difficulty_consistent_with_activity(self, trained_activity_classifier, small_dataset):
        subject = small_dataset.subjects[1]
        activities = trained_activity_classifier.predict_activity(subject.accel_windows)
        difficulties = trained_activity_classifier.predict_difficulty(subject.accel_windows)
        expected = np.array([difficulty_of(Activity(a)) for a in activities])
        assert np.array_equal(difficulties, expected)

    def test_easy_vs_hard_accuracy_above_90_percent(self, trained_activity_classifier, small_dataset):
        """The paper's claim: >90 % accuracy at discerning easy from hard windows."""
        subject = small_dataset.subjects[1]  # unseen subject
        metrics = trained_activity_classifier.evaluate(subject.accel_windows, subject.activity)
        assert metrics["activity_accuracy"] > 0.6
        for threshold, accuracy in metrics["easy_vs_hard_accuracy"].items():
            assert accuracy > 0.85, f"threshold {threshold}: {accuracy:.3f}"
        mid_thresholds = [metrics["easy_vs_hard_accuracy"][t] for t in (3, 4, 5, 6)]
        assert min(mid_thresholds) > 0.9

    def test_label_count_mismatch_rejected(self, small_dataset):
        subject = small_dataset.subjects[0]
        classifier = ActivityClassifier()
        with pytest.raises(ValueError):
            classifier.fit(subject.accel_windows, subject.activity[:-1])

    def test_predict_before_fit(self, small_dataset):
        subject = small_dataset.subjects[0]
        with pytest.raises(RuntimeError):
            ActivityClassifier().predict_activity(subject.accel_windows)
