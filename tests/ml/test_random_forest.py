"""Tests for the from-scratch random forest."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score
from repro.ml.random_forest import RandomForestClassifier


def noisy_blobs(n_per_class=80, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0, 0, 0], [2, 2, 0], [0, 2, 2]], dtype=float)
    X = np.concatenate([rng.normal(c, 1.0, size=(n_per_class, 3)) for c in centers])
    y = np.concatenate([np.full(n_per_class, i) for i in range(3)])
    return X, y


class TestForest:
    def test_paper_sized_forest_learns(self):
        X, y = noisy_blobs(seed=1)
        forest = RandomForestClassifier(n_estimators=8, max_depth=5, random_state=0).fit(X, y)
        assert accuracy_score(y, forest.predict(X)) > 0.8

    def test_forest_beats_single_tree_on_held_out_data(self):
        X, y = noisy_blobs(seed=2)
        X_test, y_test = noisy_blobs(seed=3)
        single = RandomForestClassifier(n_estimators=1, max_depth=4, random_state=0).fit(X, y)
        forest = RandomForestClassifier(n_estimators=15, max_depth=4, random_state=0).fit(X, y)
        acc_single = accuracy_score(y_test, single.predict(X_test))
        acc_forest = accuracy_score(y_test, forest.predict(X_test))
        assert acc_forest >= acc_single - 0.02

    def test_probabilities_normalized(self):
        X, y = noisy_blobs()
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        proba = forest.predict_proba(X[:7])
        assert proba.shape == (7, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_deterministic_with_seed(self):
        X, y = noisy_blobs()
        p1 = RandomForestClassifier(n_estimators=4, random_state=7).fit(X, y).predict(X)
        p2 = RandomForestClassifier(n_estimators=4, random_state=7).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_max_tree_depth_respected(self):
        X, y = noisy_blobs()
        forest = RandomForestClassifier(n_estimators=6, max_depth=3, random_state=0).fit(X, y)
        assert forest.max_tree_depth() <= 3

    def test_total_nodes_counts_all_trees(self):
        X, y = noisy_blobs()
        forest = RandomForestClassifier(n_estimators=4, max_depth=2, random_state=0).fit(X, y)
        assert forest.total_nodes() >= 4  # at least one node per tree

    def test_without_bootstrap(self):
        X, y = noisy_blobs()
        forest = RandomForestClassifier(n_estimators=3, bootstrap=False, random_state=0).fit(X, y)
        assert accuracy_score(y, forest.predict(X)) > 0.7


class TestValidation:
    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((2, 2)))

    def test_fit_shape_validation(self):
        forest = RandomForestClassifier()
        with pytest.raises(ValueError):
            forest.fit(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            forest.fit(np.zeros((5, 2)), np.zeros(6, dtype=int))
        with pytest.raises(ValueError):
            forest.fit(np.zeros((0, 2)), np.zeros(0, dtype=int))
