"""Tests for the from-scratch CART classifier."""

import numpy as np
import pytest

from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.metrics import accuracy_score


def blobs(n_per_class=60, n_classes=3, spread=0.4, seed=0):
    """Well-separated Gaussian blobs."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 3.0], [3.0, 3.0]])[:n_classes]
    X = np.concatenate([rng.normal(c, spread, size=(n_per_class, 2)) for c in centers])
    y = np.concatenate([np.full(n_per_class, i) for i in range(n_classes)])
    return X, y


class TestFitPredict:
    def test_separable_blobs(self):
        X, y = blobs()
        tree = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y)
        assert accuracy_score(y, tree.predict(X)) > 0.95

    def test_generalizes_to_unseen_points(self):
        X, y = blobs(seed=1)
        X_test, y_test = blobs(seed=2)
        tree = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y)
        assert accuracy_score(y_test, tree.predict(X_test)) > 0.9

    def test_single_class(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        y = np.full(20, 2)
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.all(tree.predict(X) == 2)
        assert tree.depth() == 0

    def test_predict_proba_sums_to_one(self):
        X, y = blobs()
        tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        proba = tree.predict_proba(X[:10])
        assert proba.shape == (10, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_1d_query_accepted(self):
        X, y = blobs()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.predict(X[0]).shape == (1,)


class TestRegularization:
    def test_max_depth_respected(self):
        X, y = blobs(spread=1.5)
        for depth in (1, 2, 4):
            tree = DecisionTreeClassifier(max_depth=depth, random_state=0).fit(X, y)
            assert tree.depth() <= depth

    def test_deeper_trees_fit_better(self):
        X, y = blobs(n_classes=4, spread=1.0, seed=3)
        shallow = DecisionTreeClassifier(max_depth=1, random_state=0).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=6, random_state=0).fit(X, y)
        assert accuracy_score(y, deep.predict(X)) > accuracy_score(y, shallow.predict(X))

    def test_min_samples_leaf_limits_node_count(self):
        X, y = blobs(spread=1.5, seed=4)
        loose = DecisionTreeClassifier(max_depth=None, min_samples_leaf=1, random_state=0).fit(X, y)
        strict = DecisionTreeClassifier(max_depth=None, min_samples_leaf=30, random_state=0).fit(X, y)
        assert strict.node_count() < loose.node_count()

    def test_entropy_criterion_works(self):
        X, y = blobs()
        tree = DecisionTreeClassifier(criterion="entropy", random_state=0).fit(X, y)
        assert accuracy_score(y, tree.predict(X)) > 0.9


class TestValidation:
    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="nope")
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_fit_validation(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(ValueError):
            tree.fit(np.zeros((5,)), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((5, 2)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 2)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.array([-1, 0, 1]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((2, 2)))

    def test_feature_count_mismatch_at_predict(self):
        X, y = blobs()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 5)))
