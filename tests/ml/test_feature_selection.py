"""Tests for the feature grid search (paper Sec. III-C)."""

import numpy as np
import pytest

from repro.ml.feature_selection import FeatureSearchResult, grid_search_features
from repro.signal.features import EXTENDED_FEATURE_NAMES


@pytest.fixture(scope="module")
def labelled_windows(request):
    """A compact labelled window set from the shared synthetic corpus."""
    small_dataset = request.getfixturevalue("small_dataset")
    subject = small_dataset.subjects[0]
    # Subsample windows to keep the grid search fast.
    idx = np.arange(0, subject.n_windows, 3)
    return subject.accel_windows[idx], subject.activity[idx]


class TestGridSearch:
    def test_returns_sorted_results(self, labelled_windows):
        accel, labels = labelled_windows
        results = grid_search_features(accel, labels, subset_size=2, n_folds=2, top_k=5, seed=0)
        assert len(results) == 5
        accuracies = [r.accuracy for r in results]
        assert accuracies == sorted(accuracies, reverse=True)
        for result in results:
            assert isinstance(result, FeatureSearchResult)
            assert len(result.features) == 2
            assert all(name in EXTENDED_FEATURE_NAMES for name in result.features)

    def test_top_k_zero_returns_everything(self, labelled_windows):
        accel, labels = labelled_windows
        results = grid_search_features(accel, labels, subset_size=1, n_folds=2, top_k=0, seed=0)
        assert len(results) == len(EXTENDED_FEATURE_NAMES)

    def test_best_subset_contains_a_motion_magnitude_feature(self, labelled_windows):
        """Any good subset must include a feature capturing motion intensity."""
        accel, labels = labelled_windows
        results = grid_search_features(accel, labels, subset_size=2, n_folds=2, top_k=1, seed=0)
        magnitude_features = {"energy", "std", "rms", "range", "mean_abs_diff", "n_peaks", "max"}
        assert set(results[0].features) & magnitude_features

    def test_invalid_subset_size(self, labelled_windows):
        accel, labels = labelled_windows
        with pytest.raises(ValueError):
            grid_search_features(accel, labels, subset_size=0)
        with pytest.raises(ValueError):
            grid_search_features(accel, labels, subset_size=99)

    def test_label_mismatch(self, labelled_windows):
        accel, labels = labelled_windows
        with pytest.raises(ValueError):
            grid_search_features(accel, labels[:-1], subset_size=2)
