"""Reproduction of the paper's headline claims (shape, not absolute values).

Paper (abstract / Sec. IV-B):

* CHRIS matches TimePPG-Small's accuracy (5.54 vs. 5.60 BPM) while cutting
  smartwatch energy by 2.03x vs. running TimePPG-Small locally, using an
  AT + TimePPG-Big hybrid configuration;
* relaxing the MAE bound to ~7.2 BPM reaches 179 uJ per prediction, 3.03x
  less than local TimePPG-Small and 1.82x less than streaming everything
  to the phone;
* if the BLE link is lost, CHRIS still offers a local-only Pareto front
  spanning AT-only to TimePPG-Big-only.

Our substrate is calibrated to Table III but the per-activity error split
and the exact energy accounting differ from the authors' testbed, so the
tests assert the *shape*: who wins, the approximate factors, and the
qualitative structure of the fronts.  EXPERIMENTS.md records the measured
numbers next to the paper's.
"""

import pytest

from repro.core.configuration import ExecutionMode
from repro.core.decision_engine import Constraint
from repro.hw.profiles import ExecutionTarget
from repro.models.registry import PAPER_MODEL_STATS


class TestConstraint1:
    """MAE bound = 5.60 BPM (TimePPG-Small's accuracy)."""

    def test_selection_matches_small_accuracy_at_lower_energy(self, oracle_experiment):
        selected = oracle_experiment.select(Constraint.max_mae(5.60))
        small_local = oracle_experiment.baseline("TimePPG-Small", ExecutionTarget.WATCH)
        assert selected.mae_bpm <= 5.60
        reduction = oracle_experiment.energy_reduction_vs(selected, small_local)
        # Paper: 2.03x; shape requirement: a clear >1.5x reduction.
        assert reduction > 1.5

    def test_selection_is_the_hybrid_at_plus_big_pair(self, oracle_experiment):
        """Sel. Model 1 in the paper: AT locally for easy windows, TimePPG-Big
        offloaded for hard ones."""
        selected = oracle_experiment.select(Constraint.max_mae(5.60))
        config = selected.configuration
        assert config.simple_model == "AT"
        assert config.complex_model == "TimePPG-Big"
        assert config.mode is ExecutionMode.HYBRID
        assert 0.0 < selected.offload_fraction < 1.0

    def test_cheaper_than_streaming_everything(self, oracle_experiment):
        """Paper: ~22 % less energy than always offloading to the phone."""
        selected = oracle_experiment.select(Constraint.max_mae(5.60))
        stream_all = oracle_experiment.baseline("TimePPG-Big", ExecutionTarget.PHONE)
        assert selected.watch_energy_j < 0.85 * stream_all.watch_energy_j

    def test_cheaper_than_any_single_device_solution_at_same_accuracy(self, oracle_experiment):
        selected = oracle_experiment.select(Constraint.max_mae(5.60))
        for baseline in oracle_experiment.baselines:
            if baseline.mae_bpm <= 5.60:
                assert selected.watch_energy_j < baseline.watch_energy_j


class TestConstraint2:
    """MAE bound = 7.2 BPM (the relaxed constraint of the paper)."""

    def test_sub_300_microjoule_operating_point(self, oracle_experiment):
        selected = oracle_experiment.select(Constraint.max_mae(7.2))
        assert selected.mae_bpm <= 7.2
        # Paper reports 179 uJ on their accounting; ours lands below 350 uJ.
        assert selected.watch_energy_j < 350e-6

    def test_reduction_factors_vs_baselines(self, oracle_experiment):
        selected = oracle_experiment.select(Constraint.max_mae(7.2))
        small_local = oracle_experiment.baseline("TimePPG-Small", ExecutionTarget.WATCH)
        stream_all = oracle_experiment.baseline("TimePPG-Big", ExecutionTarget.PHONE)
        # Paper: 3.03x vs. local Small, 1.82x vs. streaming everything.
        assert oracle_experiment.energy_reduction_vs(selected, small_local) > 2.0
        assert oracle_experiment.energy_reduction_vs(selected, stream_all) > 1.5

    def test_relaxed_constraint_offloads_less(self, oracle_experiment):
        tight = oracle_experiment.select(Constraint.max_mae(5.60))
        relaxed = oracle_experiment.select(Constraint.max_mae(7.2))
        assert relaxed.offload_fraction < tight.offload_fraction
        assert relaxed.watch_energy_j < tight.watch_energy_j


class TestConnectionLoss:
    def test_local_front_spans_at_to_big(self, oracle_experiment):
        """Paper: with BLE lost, 19 Pareto points remain, spanning 4.87-10.99
        BPM and 0.234-41.07 mJ."""
        front = oracle_experiment.table.pareto(connected=False)
        assert len(front) >= 5
        assert all(c.is_local for c in front)
        energies = [c.watch_energy_mj for c in front]
        maes = [c.mae_bpm for c in front]
        # Cheap end: the AT-only operating point (0.234 mJ, ~11 BPM).
        assert min(energies) == pytest.approx(PAPER_MODEL_STATS["AT"].watch_energy_mj, rel=0.1)
        assert max(maes) == pytest.approx(PAPER_MODEL_STATS["AT"].mae_bpm, rel=0.15)
        # Accurate end: configurations running TimePPG-Big locally for most
        # windows — tens of millijoules, MAE within a few tenths of a BPM of
        # the Big-only model.  (Whether the exact Big-only point sits on the
        # sampled front depends on per-activity sampling noise.)
        assert max(energies) > 0.5 * PAPER_MODEL_STATS["TimePPG-Big"].watch_energy_mj
        assert min(maes) < PAPER_MODEL_STATS["TimePPG-Big"].mae_bpm + 0.4


class TestBaselineObservations:
    """Sec. IV-A: when local vs. offloaded execution wins, per model."""

    def test_at_should_stay_on_the_watch(self, oracle_experiment):
        local = oracle_experiment.baseline("AT", ExecutionTarget.WATCH)
        offloaded = oracle_experiment.baseline("AT", ExecutionTarget.PHONE)
        assert local.watch_energy_j < offloaded.watch_energy_j

    def test_big_should_be_offloaded(self, oracle_experiment):
        local = oracle_experiment.baseline("TimePPG-Big", ExecutionTarget.WATCH)
        offloaded = oracle_experiment.baseline("TimePPG-Big", ExecutionTarget.PHONE)
        assert offloaded.watch_energy_j < local.watch_energy_j / 20

    def test_small_is_the_borderline_case(self, oracle_experiment):
        """For TimePPG-Small offloading is only marginally cheaper for the
        watch (0.519 vs. 0.735 mJ in the paper)."""
        local = oracle_experiment.baseline("TimePPG-Small", ExecutionTarget.WATCH)
        offloaded = oracle_experiment.baseline("TimePPG-Small", ExecutionTarget.PHONE)
        assert offloaded.watch_energy_j < local.watch_energy_j
        assert offloaded.watch_energy_j > 0.6 * local.watch_energy_j

    def test_pareto_front_contains_hybrid_points(self, oracle_experiment):
        front = oracle_experiment.table.pareto(connected=True)
        assert any(not c.is_local for c in front)
