"""End-to-end integration tests spanning every subsystem.

These tests exercise the full pipeline the paper describes: synthesize a
corpus, train the difficulty detector, (optionally) train and quantize a
real TCN, profile the configuration space, let the decision engine pick a
configuration, and replay a held-out subject through the CHRIS runtime on
the calibrated hardware co-model.
"""

import numpy as np
import pytest

from repro.core.decision_engine import Constraint
from repro.core.profiling import ConfigurationProfiler, ProfilingData
from repro.core.runtime import CHRISRuntime
from repro.core.zoo import ModelsZoo, ZooEntry
from repro.data import SyntheticDaliaGenerator, SyntheticDatasetConfig, WindowedDataset
from repro.hw.battery import estimate_lifetime_hours
from repro.hw.platform import WearableSystem
from repro.hw.profiles import ExecutionTarget, build_deployment_table
from repro.ml.activity_classifier import ActivityClassifier
from repro.models import AdaptiveThresholdPredictor, SpectralHRPredictor
from repro.ml.metrics import mean_absolute_error


class TestRealModelEndToEnd:
    """Full pipeline with *real* (non-calibrated) classical predictors."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        config = SyntheticDatasetConfig(n_subjects=4, activity_duration_s=40.0, seed=33)
        dataset = SyntheticDaliaGenerator(config).generate_windowed()
        train = WindowedDataset(dataset.subjects[:2]).concatenated()
        profiling_subject = dataset.subjects[2]
        test_subject = dataset.subjects[3]

        classifier = ActivityClassifier(random_state=0)
        classifier.fit(train.accel_windows, train.activity)

        # Real classical models; their MAE is measured on the profiling subject.
        predictors = {"AT": AdaptiveThresholdPredictor(), "SpectralTracker": SpectralHRPredictor()}
        maes = {}
        for name, predictor in predictors.items():
            predictor.reset()
            predictions = predictor.predict(
                profiling_subject.ppg_windows, profiling_subject.accel_windows
            )
            maes[name] = mean_absolute_error(profiling_subject.hr, predictions)
        deployments = build_deployment_table(
            [p.info for p in predictors.values()], maes=maes, prefer_paper=True
        )
        zoo = ModelsZoo(
            [ZooEntry(predictor=predictors[name], deployment=deployments[name])
             for name in predictors]
        )
        system = WearableSystem()
        data = ProfilingData.from_zoo_predictions(zoo, profiling_subject, classifier)
        table = ConfigurationProfiler(zoo, system).profile_all(data)
        return zoo, system, table, classifier, test_subject, maes

    def test_profiling_reflects_model_quality(self, pipeline):
        _, _, table, _, _, maes = pipeline
        assert maes["SpectralTracker"] < maes["AT"]
        assert len(table) == 20  # one pair x 10 thresholds x 2 modes

    def test_runtime_on_unseen_subject(self, pipeline):
        zoo, system, table, classifier, test_subject, maes = pipeline
        from repro.core.decision_engine import DecisionEngine

        engine = DecisionEngine(table)
        runtime = CHRISRuntime(zoo, engine, system, classifier)
        constraint = Constraint.max_mae(maes["SpectralTracker"] * 1.3)
        result = runtime.run(test_subject, constraint)
        assert result.n_windows == test_subject.n_windows
        # The achieved error is in the plausible band between the two models.
        assert result.mae_bpm < maes["AT"] * 1.5
        # Energy per prediction translates into a multi-day battery life.
        assert estimate_lifetime_hours(result.mean_watch_energy_j) > 24.0

    def test_energy_accounting_consistency(self, pipeline):
        zoo, system, table, classifier, test_subject, _ = pipeline
        from repro.core.decision_engine import DecisionEngine

        engine = DecisionEngine(table)
        runtime = CHRISRuntime(zoo, engine, system, classifier)
        result = runtime.run(test_subject, Constraint.max_energy_mj(0.6))
        total = sum(d.cost.watch_total_j for d in result.decisions)
        assert result.total_watch_energy_j == pytest.approx(total)
        assert result.mean_watch_energy_j == pytest.approx(total / result.n_windows)


class TestCalibratedEndToEnd:
    """Calibrated-mode pipeline (the benchmark harness path)."""

    def test_selected_configuration_generalizes_to_new_subjects(self, oracle_experiment):
        """A configuration selected on the profiling set keeps (approximately)
        its promised MAE/energy on freshly generated subjects."""
        selected = oracle_experiment.select(Constraint.max_mae(5.60))
        config = SyntheticDatasetConfig(n_subjects=2, activity_duration_s=60.0, seed=77)
        fresh = SyntheticDaliaGenerator(config).generate_windowed()
        from repro.core.runtime import CHRISRuntime

        runtime = CHRISRuntime(
            zoo=oracle_experiment.zoo,
            engine=oracle_experiment.engine,
            system=oracle_experiment.system,
        )
        for subject in fresh:
            result = runtime.run_with_configuration(subject, selected, use_oracle_difficulty=True)
            assert result.mae_bpm < 5.60 * 1.4
            assert result.mean_watch_energy_j == pytest.approx(selected.watch_energy_j, rel=0.15)

    def test_connection_loss_degrades_gracefully(self, oracle_experiment):
        """When BLE drops, the engine falls back to a local configuration with
        higher error or energy, never crashes."""
        connected = oracle_experiment.select(Constraint.max_mae(5.60), connected=True)
        local = oracle_experiment.select(Constraint.max_mae(5.60), connected=False)
        assert local.is_local
        # Meeting the same MAE bound locally costs (much) more energy.
        assert local.watch_energy_j > connected.watch_energy_j

    def test_battery_lifetime_improvement_is_tangible(self, oracle_experiment):
        selected = oracle_experiment.select(Constraint.max_mae(5.60))
        small_local = oracle_experiment.baseline("TimePPG-Small", ExecutionTarget.WATCH)
        life_chris = estimate_lifetime_hours(selected.watch_energy_j)
        life_small = estimate_lifetime_hours(small_local.watch_energy_j)
        assert life_chris > 1.4 * life_small
