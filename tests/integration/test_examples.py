"""Smoke tests for the runnable examples.

The two fast examples are executed exactly as a user would run them (as
subprocesses of the current interpreter); the slower training/grid-search
examples are covered indirectly by the unit and integration tests of the
modules they use.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = REPO_ROOT / "examples"


def run_example(name: str, timeout: int = 240) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        check=False,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart_runs_and_reports_a_selection(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "decision engine selection" in result.stdout
        assert "energy reduction" in result.stdout
        assert "battery life" in result.stdout

    def test_offload_exploration_regenerates_fig4_and_fig5(self):
        result = run_example("offload_exploration.py")
        assert result.returncode == 0, result.stderr
        assert "Fig. 4" in result.stdout
        assert "Fig. 5" in result.stdout
        assert "connection loss" in result.stdout

    def test_fleet_simulation_schedules_a_dynamic_heterogeneous_fleet(self):
        result = run_example("fleet_simulation.py")
        assert result.returncode == 0, result.stderr
        assert "streaming sessions as they complete" in result.stdout
        assert "arrived dynamically" in result.stdout
        assert "retired before dispatch: True" in result.stdout
        assert "2 hardware revisions" in result.stdout
        assert "fleet speedup" in result.stdout

    def test_fleet_resume_survives_a_kill_and_injected_faults(self):
        result = run_example("fleet_resume.py")
        assert result.returncode == 0, result.stderr
        assert "killed after 6 subjects" in result.stdout
        assert "bit-identical to the uninterrupted run: True" in result.stdout
        assert "re-executed: identical=True" in result.stdout
        assert "subjects quarantined" in result.stdout

    def test_streaming_arrivals_serves_under_the_slo(self):
        result = run_example("streaming_arrivals.py")
        assert result.returncode == 0, result.stderr
        assert "policy='deadline'" in result.stdout
        assert "policy='drain'" in result.stdout
        assert "completion latency" in result.stdout
        assert "deadline misses" in result.stdout

    def test_all_examples_are_present_and_importable_as_scripts(self):
        expected = {
            "quickstart.py",
            "offload_exploration.py",
            "train_and_deploy_timeppg.py",
            "activity_difficulty_detector.py",
            "fleet_simulation.py",
            "fleet_resume.py",
            "streaming_arrivals.py",
        }
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert expected <= present
        for name in expected:
            source = (EXAMPLES / name).read_text()
            assert '__name__ == "__main__"' in source
            compile(source, name, "exec")
