"""Tests for repro.data.activities."""

import pytest

from repro.data.activities import (
    ACTIVITIES,
    ACTIVITY_DIFFICULTY,
    NUM_DIFFICULTY_LEVELS,
    Activity,
    activities_by_difficulty,
    activity_from_difficulty,
    difficulty_of,
    is_easy,
)


class TestTaxonomy:
    def test_nine_activities(self):
        assert len(ACTIVITIES) == 9
        assert len(ACTIVITY_DIFFICULTY) == 9
        assert NUM_DIFFICULTY_LEVELS == 9

    def test_difficulty_levels_are_a_permutation_of_1_to_9(self):
        assert sorted(ACTIVITY_DIFFICULTY.values()) == list(range(1, 10))

    def test_known_extremes(self):
        # Resting has the least motion, table soccer the most (paper Sec. III-A).
        assert difficulty_of(Activity.RESTING) == 1
        assert difficulty_of(Activity.TABLE_SOCCER) == 9

    def test_sedentary_easier_than_dynamic(self):
        assert difficulty_of(Activity.SITTING) < difficulty_of(Activity.WALKING)
        assert difficulty_of(Activity.WORKING) < difficulty_of(Activity.STAIRS)
        assert difficulty_of(Activity.DRIVING) < difficulty_of(Activity.CYCLING)


class TestDifficultyLookups:
    def test_difficulty_accepts_raw_ints(self):
        for activity in Activity:
            assert difficulty_of(int(activity)) == difficulty_of(activity)

    def test_activities_by_difficulty_is_sorted(self):
        ordered = activities_by_difficulty()
        assert [difficulty_of(a) for a in ordered] == list(range(1, 10))

    def test_activity_from_difficulty_roundtrip(self):
        for level in range(1, 10):
            assert difficulty_of(activity_from_difficulty(level)) == level

    def test_activity_from_invalid_difficulty(self):
        with pytest.raises(ValueError):
            activity_from_difficulty(0)
        with pytest.raises(ValueError):
            activity_from_difficulty(10)


class TestIsEasy:
    def test_threshold_semantics(self):
        # Threshold 4: the four easiest activities are "easy".
        easy = [a for a in Activity if is_easy(a, 4)]
        assert len(easy) == 4
        assert Activity.RESTING in easy
        assert Activity.TABLE_SOCCER not in easy

    def test_threshold_zero_nothing_easy(self):
        assert not any(is_easy(a, 0) for a in Activity)

    def test_threshold_nine_everything_easy(self):
        assert all(is_easy(a, 9) for a in Activity)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            is_easy(Activity.RESTING, 10)
        with pytest.raises(ValueError):
            is_easy(Activity.RESTING, -1)
