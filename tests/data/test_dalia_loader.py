"""Tests for the optional real PPG-DaLiA loader.

The real dataset is not available offline, so the loader is exercised with
small fabricated pickle files that mimic its structure (nested signal
dictionary, per-rate channels, per-window HR labels).
"""

import pickle

import numpy as np
import pytest

from repro.data.dalia_loader import load_dalia_dataset, load_dalia_subject


def write_fake_subject(path, subject_id="S1", duration_s=40.0, bpm=72.0):
    """Write a pickle with the PPG-DaLiA field layout."""
    fs_bvp, fs_acc, fs_act = 64.0, 32.0, 4.0
    t_bvp = np.arange(0, duration_s, 1 / fs_bvp)
    bvp = np.sin(2 * np.pi * (bpm / 60.0) * t_bvp)[:, None]
    acc = np.random.default_rng(0).normal(0, 0.05, size=(int(duration_s * fs_acc), 3))
    activity = np.ones(int(duration_s * fs_act))  # raw code 1 = sitting
    n_labels = max(0, int((duration_s - 8.0) / 2.0) + 1)
    labels = np.full(n_labels, bpm)
    payload = {
        "signal": {"wrist": {"BVP": bvp, "ACC": acc}},
        "activity": activity,
        "label": labels,
        "subject": subject_id,
    }
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)


class TestLoadDaliaSubject:
    def test_loads_and_resamples(self, tmp_path):
        path = tmp_path / "S1.pkl"
        write_fake_subject(path, duration_s=40.0, bpm=72.0)
        recording = load_dalia_subject(path)
        assert recording.subject_id == "S1"
        assert recording.fs == 32.0
        assert recording.n_samples == pytest.approx(40.0 * 32, abs=2)
        assert recording.accel.shape == (recording.n_samples, 3)
        # The HR trace reflects the per-window labels.
        assert np.allclose(recording.hr, 72.0, atol=1e-6)
        # Raw activity code 1 (sitting) maps to the reproduction's id 0.
        assert set(np.unique(recording.activity)) <= {0}

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dalia_subject(tmp_path / "nope.pkl")

    def test_malformed_pickle(self, tmp_path):
        path = tmp_path / "bad.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"something": 1}, handle)
        with pytest.raises(ValueError):
            load_dalia_subject(path)


class TestLoadDaliaDataset:
    def test_loads_all_subjects_in_order(self, tmp_path):
        for i in (2, 1, 10):
            subject_dir = tmp_path / f"S{i}"
            subject_dir.mkdir()
            write_fake_subject(subject_dir / f"S{i}.pkl", subject_id=f"S{i}", duration_s=20.0)
        recordings = load_dalia_dataset(tmp_path)
        assert [r.subject_id for r in recordings] == ["S1", "S2", "S10"]

    def test_missing_root(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dalia_dataset(tmp_path / "absent")

    def test_empty_root(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dalia_dataset(tmp_path)
