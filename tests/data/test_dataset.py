"""Tests for repro.data.dataset containers and windowing."""

import numpy as np
import pytest

from repro.data.activities import Activity
from repro.data.dataset import (
    SubjectRecording,
    WindowedDataset,
    WindowedSubject,
    window_subject,
)
from repro.signal.windowing import WindowSpec


def make_recording(n_samples: int = 1000, subject_id: str = "S1") -> SubjectRecording:
    rng = np.random.default_rng(0)
    return SubjectRecording(
        subject_id=subject_id,
        ppg=rng.normal(size=n_samples),
        accel=rng.normal(size=(n_samples, 3)),
        activity=np.full(n_samples, int(Activity.WALKING)),
        hr=np.full(n_samples, 75.0),
        fs=32.0,
    )


class TestSubjectRecording:
    def test_basic_properties(self):
        recording = make_recording(640)
        assert recording.n_samples == 640
        assert recording.duration_s == pytest.approx(20.0)

    def test_shape_validation(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            SubjectRecording("S1", rng.normal(size=100), rng.normal(size=(50, 3)),
                             np.zeros(100, dtype=int), np.full(100, 70.0))
        with pytest.raises(ValueError):
            SubjectRecording("S1", rng.normal(size=100), rng.normal(size=(100, 2)),
                             np.zeros(100, dtype=int), np.full(100, 70.0))
        with pytest.raises(ValueError):
            SubjectRecording("S1", rng.normal(size=100), rng.normal(size=(100, 3)),
                             np.zeros(99, dtype=int), np.full(100, 70.0))

    def test_invalid_fs(self):
        with pytest.raises(ValueError):
            make_rec = make_recording(100)
            SubjectRecording(
                "S1", make_rec.ppg, make_rec.accel, make_rec.activity, make_rec.hr, fs=0.0
            )


class TestWindowSubject:
    def test_window_counts_and_labels(self):
        recording = make_recording(256 + 64 * 5)
        windowed = window_subject(recording)
        assert windowed.n_windows == 6
        assert windowed.ppg_windows.shape == (6, 256)
        assert windowed.accel_windows.shape == (6, 256, 3)
        assert np.all(windowed.activity == int(Activity.WALKING))
        assert np.allclose(windowed.hr, 75.0)

    def test_difficulty_property(self):
        recording = make_recording(512)
        windowed = window_subject(recording)
        assert np.all(windowed.difficulty == 7)  # walking has difficulty 7

    def test_custom_spec(self):
        recording = make_recording(400)
        spec = WindowSpec(length=100, stride=100)
        windowed = window_subject(recording, spec)
        assert windowed.n_windows == 4
        assert windowed.spec == spec

    def test_hr_label_is_window_mean(self):
        recording = make_recording(512)
        recording.hr[:] = np.linspace(60, 80, 512)
        windowed = window_subject(recording)
        assert windowed.hr[0] == pytest.approx(recording.hr[:256].mean())


class TestWindowedSubject:
    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            WindowedSubject(
                subject_id="S1",
                ppg_windows=np.zeros((4, 256)),
                accel_windows=np.zeros((3, 256, 3)),
                activity=np.zeros(4, dtype=int),
                hr=np.zeros(4),
            )


class TestWindowedDataset:
    def _dataset(self) -> WindowedDataset:
        return WindowedDataset(
            [window_subject(make_recording(512, f"S{i + 1}")) for i in range(3)]
        )

    def test_lookup_and_selection(self):
        dataset = self._dataset()
        assert len(dataset) == 3
        assert dataset.subject("S2").subject_id == "S2"
        selected = dataset.select(["S3", "S1"])
        assert selected.subject_ids == ["S3", "S1"]

    def test_unknown_subject(self):
        with pytest.raises(KeyError):
            self._dataset().subject("S99")

    def test_duplicate_ids_rejected(self):
        subject = window_subject(make_recording(512, "S1"))
        with pytest.raises(ValueError):
            WindowedDataset([subject, subject])

    def test_concatenated(self):
        dataset = self._dataset()
        merged = dataset.concatenated()
        assert merged.n_windows == dataset.n_windows
        assert merged.ppg_windows.shape[0] == sum(s.n_windows for s in dataset)

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            WindowedDataset([]).concatenated()
