"""Tests for repro.data.ppg_model."""

import numpy as np
import pytest

from repro.data.ppg_model import PPGSynthesizer
from repro.signal.spectral import hr_from_spectrum


class TestPulseShape:
    def test_periodic_in_phase(self):
        synth = PPGSynthesizer()
        phase = np.linspace(0, 1, 100, endpoint=False)
        assert np.allclose(synth.pulse_shape(phase), synth.pulse_shape(phase + 1.0))

    def test_systolic_peak_dominates(self):
        synth = PPGSynthesizer()
        phase = np.linspace(0, 1, 1000, endpoint=False)
        shape = synth.pulse_shape(phase)
        peak_phase = phase[np.argmax(shape)]
        assert peak_phase == pytest.approx(0.2, abs=0.05)


class TestSynthesize:
    def test_output_shape_and_zero_mean(self):
        synth = PPGSynthesizer(rng=np.random.default_rng(0))
        hr = np.full(32 * 30, 70.0)
        ppg = synth.synthesize(hr)
        assert ppg.shape == hr.shape
        assert ppg.mean() == pytest.approx(0.0, abs=1e-9)

    def test_dominant_frequency_matches_constant_hr(self):
        synth = PPGSynthesizer(noise_std=0.0, respiration_amplitude=0.0, rng=np.random.default_rng(1))
        for bpm in (55.0, 72.0, 110.0, 150.0):
            hr = np.full(32 * 16, bpm)
            ppg = synth.synthesize(hr)
            estimated = hr_from_spectrum(ppg[-256:], 32.0)
            assert estimated == pytest.approx(bpm, abs=4.0)

    def test_tracks_changing_hr(self):
        synth = PPGSynthesizer(noise_std=0.0, rng=np.random.default_rng(2))
        hr = np.concatenate([np.full(32 * 20, 60.0), np.full(32 * 20, 120.0)])
        ppg = synth.synthesize(hr)
        low = hr_from_spectrum(ppg[32 * 10: 32 * 10 + 256], 32.0)
        high = hr_from_spectrum(ppg[-256:], 32.0)
        assert low == pytest.approx(60.0, abs=6.0)
        assert high == pytest.approx(120.0, abs=8.0)

    def test_noise_increases_variability(self):
        hr = np.full(32 * 10, 70.0)
        clean = PPGSynthesizer(noise_std=0.0, rng=np.random.default_rng(3)).synthesize(hr)
        noisy = PPGSynthesizer(noise_std=0.2, rng=np.random.default_rng(3)).synthesize(hr)
        assert np.std(noisy - clean) > 0.05

    def test_invalid_hr_rejected(self):
        synth = PPGSynthesizer()
        with pytest.raises(ValueError):
            synth.synthesize(np.array([70.0, 0.0, 70.0]))
        with pytest.raises(ValueError):
            synth.synthesize(np.zeros((4, 4)))

    def test_empty_input(self):
        assert PPGSynthesizer().synthesize(np.array([])).shape == (0,)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PPGSynthesizer(fs=0.0)
        with pytest.raises(ValueError):
            PPGSynthesizer(systolic_width=-0.1)
