"""Tests for repro.data.motion."""

import numpy as np
import pytest

from repro.data.activities import ACTIVITY_DIFFICULTY, Activity
from repro.data.motion import (
    ACTIVITY_MOTION_PROFILES,
    AccelerometerSynthesizer,
    MotionArtifactModel,
)


class TestMotionProfiles:
    def test_every_activity_has_a_profile(self):
        assert set(ACTIVITY_MOTION_PROFILES) == set(Activity)

    def test_artifact_coupling_follows_difficulty_order(self):
        ordered = sorted(Activity, key=lambda a: ACTIVITY_DIFFICULTY[a])
        couplings = [ACTIVITY_MOTION_PROFILES[a].artifact_coupling for a in ordered]
        assert couplings == sorted(couplings)

    def test_periodic_amplitude_follows_difficulty_order(self):
        ordered = sorted(Activity, key=lambda a: ACTIVITY_DIFFICULTY[a])
        amplitudes = [ACTIVITY_MOTION_PROFILES[a].periodic_amplitude for a in ordered]
        assert amplitudes == sorted(amplitudes)


class TestAccelerometerSynthesizer:
    def test_output_shape(self):
        synth = AccelerometerSynthesizer(rng=np.random.default_rng(0))
        labels = np.full(32 * 30, int(Activity.WALKING))
        accel = synth.synthesize(labels)
        assert accel.shape == (labels.size, 3)

    def test_gravity_present_even_at_rest(self):
        synth = AccelerometerSynthesizer(rng=np.random.default_rng(1))
        labels = np.full(32 * 30, int(Activity.RESTING))
        accel = synth.synthesize(labels)
        magnitude = np.linalg.norm(accel, axis=1)
        assert magnitude.mean() == pytest.approx(1.0, abs=0.25)

    def test_dynamic_energy_reproduces_difficulty_ordering(self):
        """Window-level acceleration std must rank activities as the paper does."""
        synth = AccelerometerSynthesizer(rng=np.random.default_rng(2))
        window = 256
        stds = {}
        for activity in Activity:
            labels = np.full(32 * 120, int(activity))
            accel = synth.synthesize(labels)
            windows = accel[: (accel.shape[0] // window) * window].reshape(-1, window, 3)
            stds[activity] = float(np.median(windows.std(axis=1).mean(axis=1)))
        ordered = sorted(Activity, key=lambda a: ACTIVITY_DIFFICULTY[a])
        values = [stds[a] for a in ordered]
        # Monotone non-decreasing along the difficulty ordering.
        assert all(b >= a * 0.95 for a, b in zip(values, values[1:])), values

    def test_empty_labels(self):
        assert AccelerometerSynthesizer().synthesize(np.array([], dtype=int)).shape == (0, 3)

    def test_2d_labels_rejected(self):
        with pytest.raises(ValueError):
            AccelerometerSynthesizer().synthesize(np.zeros((3, 3), dtype=int))


class TestMotionArtifactModel:
    def _accel_and_labels(self, activity: Activity, seconds: float = 60.0, seed: int = 0):
        labels = np.full(int(32 * seconds), int(activity))
        accel = AccelerometerSynthesizer(rng=np.random.default_rng(seed)).synthesize(labels)
        return accel, labels

    def test_output_shape(self):
        model = MotionArtifactModel(rng=np.random.default_rng(0))
        accel, labels = self._accel_and_labels(Activity.WALKING)
        artifacts = model.artifacts(accel, labels)
        assert artifacts.shape == labels.shape

    def test_harder_activities_produce_larger_artifacts(self):
        model = MotionArtifactModel(rng=np.random.default_rng(1))
        rest_accel, rest_labels = self._accel_and_labels(Activity.RESTING, seed=1)
        soccer_accel, soccer_labels = self._accel_and_labels(Activity.TABLE_SOCCER, seed=1)
        rest = model.artifacts(rest_accel, rest_labels)
        soccer = model.artifacts(soccer_accel, soccer_labels)
        assert np.std(soccer) > 10 * np.std(rest)

    def test_mismatched_lengths_rejected(self):
        model = MotionArtifactModel()
        with pytest.raises(ValueError):
            model.artifacts(np.zeros((10, 3)), np.zeros(5, dtype=int))

    def test_wrong_accel_shape_rejected(self):
        model = MotionArtifactModel()
        with pytest.raises(ValueError):
            model.artifacts(np.zeros((10, 2)), np.zeros(10, dtype=int))

    def test_empty_input(self):
        model = MotionArtifactModel()
        assert model.artifacts(np.zeros((0, 3)), np.zeros(0, dtype=int)).shape == (0,)
