"""Tests for repro.data.hr_dynamics."""

import numpy as np
import pytest

from repro.data.activities import Activity
from repro.data.hr_dynamics import ACTIVITY_HR_PROFILE, HeartRateDynamics


class TestSetpoints:
    def test_every_activity_has_a_profile(self):
        assert set(ACTIVITY_HR_PROFILE) == set(Activity)

    def test_resting_is_the_lowest_setpoint(self):
        model = HeartRateDynamics(resting_hr=60.0)
        setpoints = {a: model.setpoint(a) for a in Activity}
        assert min(setpoints, key=setpoints.get) == Activity.RESTING

    def test_exercise_raises_setpoint(self):
        model = HeartRateDynamics(resting_hr=60.0)
        assert model.setpoint(Activity.STAIRS) > model.setpoint(Activity.SITTING) + 20


class TestGeneration:
    def test_output_shape_and_range(self):
        model = HeartRateDynamics(resting_hr=65.0, rng=np.random.default_rng(0))
        labels = np.full(32 * 60, int(Activity.SITTING))
        hr = model.generate(labels)
        assert hr.shape == labels.shape
        assert np.all(hr >= 35.0)
        assert np.all(hr <= 200.0)

    def test_steady_state_tracks_setpoint(self):
        model = HeartRateDynamics(resting_hr=65.0, rng=np.random.default_rng(1))
        labels = np.full(32 * 600, int(Activity.CYCLING))
        hr = model.generate(labels)
        steady = hr[len(hr) // 2:]
        assert steady.mean() == pytest.approx(model.setpoint(Activity.CYCLING), abs=12.0)

    def test_hr_rises_after_activity_transition(self):
        model = HeartRateDynamics(resting_hr=60.0, rng=np.random.default_rng(2))
        rest = np.full(32 * 120, int(Activity.RESTING))
        climb = np.full(32 * 120, int(Activity.STAIRS))
        hr = model.generate(np.concatenate([rest, climb]))
        before = hr[: 32 * 60].mean()
        after = hr[-32 * 60:].mean()
        assert after > before + 15.0

    def test_transition_is_gradual_not_instant(self):
        model = HeartRateDynamics(resting_hr=60.0, response_time_s=30.0, rng=np.random.default_rng(3))
        labels = np.concatenate(
            [np.full(32 * 60, int(Activity.RESTING)), np.full(32 * 60, int(Activity.STAIRS))]
        )
        hr = model.generate(labels)
        transition_index = 32 * 60
        just_after = hr[transition_index:transition_index + 32 * 5].mean()
        final = hr[-32 * 20:].mean()
        # 5 seconds after the transition the HR must still be well below its
        # eventual steady state.
        assert just_after < final - 10.0

    def test_reproducible_with_seeded_rng(self):
        labels = np.full(32 * 30, int(Activity.WALKING))
        hr1 = HeartRateDynamics(rng=np.random.default_rng(7)).generate(labels)
        hr2 = HeartRateDynamics(rng=np.random.default_rng(7)).generate(labels)
        assert np.array_equal(hr1, hr2)

    def test_empty_labels(self):
        model = HeartRateDynamics()
        assert model.generate(np.array([], dtype=int)).shape == (0,)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HeartRateDynamics(resting_hr=0.0)
        with pytest.raises(ValueError):
            HeartRateDynamics(fs=-1.0)
        with pytest.raises(ValueError):
            HeartRateDynamics(response_time_s=0.0)

    def test_2d_labels_rejected(self):
        with pytest.raises(ValueError):
            HeartRateDynamics().generate(np.zeros((4, 4), dtype=int))
