"""Tests for repro.data.synthetic (the PPG-DaLiA-like generator)."""

import numpy as np
import pytest

from repro.data.activities import ACTIVITIES, ACTIVITY_DIFFICULTY, Activity
from repro.data.synthetic import SyntheticDaliaGenerator, SyntheticDatasetConfig
from repro.models.adaptive_threshold import AdaptiveThresholdPredictor


class TestConfig:
    def test_defaults_match_ppgdalia_structure(self):
        config = SyntheticDatasetConfig()
        assert config.n_subjects == 15
        assert config.fs == 32.0

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(n_subjects=0)
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(activity_duration_s=-1)
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(artifact_scale=-0.5)
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(resting_hr_range=(80.0, 60.0))


class TestGenerateSubject:
    @pytest.fixture(scope="class")
    def generator(self):
        return SyntheticDaliaGenerator(
            SyntheticDatasetConfig(n_subjects=3, activity_duration_s=30.0, seed=42)
        )

    def test_channel_shapes_consistent(self, generator):
        recording = generator.generate_subject(0)
        n = recording.n_samples
        assert recording.ppg.shape == (n,)
        assert recording.accel.shape == (n, 3)
        assert recording.activity.shape == (n,)
        assert recording.hr.shape == (n,)

    def test_every_activity_appears_once(self, generator):
        recording = generator.generate_subject(0)
        present = set(np.unique(recording.activity))
        assert present == {int(a) for a in ACTIVITIES}
        # Each activity bout has the configured duration.
        for activity in ACTIVITIES:
            count = np.sum(recording.activity == int(activity))
            assert count == int(30.0 * 32)

    def test_subjects_differ_but_are_reproducible(self, generator):
        a0 = generator.generate_subject(0)
        a1 = generator.generate_subject(1)
        assert not np.allclose(a0.ppg[:500], a1.ppg[:500])
        again = generator.generate_subject(0)
        assert np.array_equal(a0.ppg, again.ppg)
        assert np.array_equal(a0.hr, again.hr)

    def test_subject_ids(self, generator):
        assert generator.subject_ids() == ["S1", "S2", "S3"]
        assert generator.generate_subject(2).subject_id == "S3"

    def test_out_of_range_index(self, generator):
        with pytest.raises(ValueError):
            generator.generate_subject(3)

    def test_hr_in_physiological_range(self, generator):
        recording = generator.generate_subject(1)
        assert np.all(recording.hr >= 35.0)
        assert np.all(recording.hr <= 200.0)


class TestArtifactScaling:
    def test_artifact_scale_zero_gives_cleaner_ppg(self):
        base = dict(n_subjects=1, activity_duration_s=30.0, seed=9, shuffle_activities=False)
        clean = SyntheticDaliaGenerator(
            SyntheticDatasetConfig(artifact_scale=0.0, **base)
        ).generate_subject(0)
        noisy = SyntheticDaliaGenerator(
            SyntheticDatasetConfig(artifact_scale=2.0, **base)
        ).generate_subject(0)
        # During the hardest activity, the noisy PPG deviates much more.
        mask = clean.activity == int(Activity.TABLE_SOCCER)
        assert np.std(noisy.ppg[mask]) > 1.5 * np.std(clean.ppg[mask])

    def test_difficulty_ordering_reflected_in_at_error(self):
        """The HR-estimation error of AT must grow from easy to hard activities."""
        config = SyntheticDatasetConfig(n_subjects=2, activity_duration_s=60.0, seed=3)
        dataset = SyntheticDaliaGenerator(config).generate_windowed()
        at = AdaptiveThresholdPredictor()
        easy_errors, hard_errors = [], []
        for subject in dataset:
            at.reset()
            predictions = at.predict(subject.ppg_windows)
            errors = np.abs(predictions - subject.hr)
            difficulty = subject.difficulty
            easy_errors.extend(errors[difficulty <= 3])
            hard_errors.extend(errors[difficulty >= 7])
        assert np.mean(hard_errors) > 2.0 * np.mean(easy_errors)


class TestGenerateWindowed:
    def test_windowed_dataset_structure(self):
        config = SyntheticDatasetConfig(n_subjects=2, activity_duration_s=20.0, seed=1)
        dataset = SyntheticDaliaGenerator(config).generate_windowed()
        assert len(dataset) == 2
        assert dataset.subject_ids == ["S1", "S2"]
        for subject in dataset:
            assert subject.ppg_windows.shape[1] == 256
            assert subject.accel_windows.shape[1:] == (256, 3)
            assert subject.n_windows == subject.hr.shape[0]
            assert np.all((subject.difficulty >= 1) & (subject.difficulty <= 9))
