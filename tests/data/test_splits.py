"""Tests for the paper's cross-validation protocol (repro.data.splits)."""

import pytest

from repro.data.splits import CrossValidationSplit, leave_subjects_out_folds


class TestLeaveSubjectsOutFolds:
    def test_paper_protocol_15_subjects(self):
        subjects = [f"S{i + 1}" for i in range(15)]
        splits = leave_subjects_out_folds(subjects, fold_size=3)
        # Every subject is the test subject exactly once.
        assert len(splits) == 15
        assert sorted(s.test_subject for s in splits) == sorted(subjects)

    def test_split_structure(self):
        subjects = [f"S{i + 1}" for i in range(15)]
        splits = leave_subjects_out_folds(subjects, fold_size=3)
        for split in splits:
            assert len(split.train_subjects) == 12
            assert len(split.val_subjects) == 2
            # No overlap between the three roles.
            all_ids = set(split.train_subjects) | set(split.val_subjects) | {split.test_subject}
            assert len(all_ids) == 15
            # Validation subjects come from the same held-out fold as the test subject.
            assert set(split.val_subjects).isdisjoint(split.train_subjects)

    def test_folds_are_contiguous_groups(self):
        subjects = [f"S{i + 1}" for i in range(6)]
        splits = leave_subjects_out_folds(subjects, fold_size=3)
        first_fold_splits = [s for s in splits if s.fold == 0]
        held_out = {s.test_subject for s in first_fold_splits}
        assert held_out == {"S1", "S2", "S3"}

    def test_indivisible_subject_count_rejected(self):
        with pytest.raises(ValueError):
            leave_subjects_out_folds([f"S{i}" for i in range(7)], fold_size=3)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            leave_subjects_out_folds(["S1", "S1", "S2"], fold_size=3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            leave_subjects_out_folds([], fold_size=3)

    def test_invalid_fold_size(self):
        with pytest.raises(ValueError):
            leave_subjects_out_folds(["S1", "S2"], fold_size=0)


class TestCrossValidationSplit:
    def test_overlap_validation(self):
        with pytest.raises(ValueError):
            CrossValidationSplit(0, ("S1", "S2"), ("S2",), "S3")
        with pytest.raises(ValueError):
            CrossValidationSplit(0, ("S1", "S2"), ("S3",), "S1")

    def test_all_subjects(self):
        split = CrossValidationSplit(0, ("S1", "S2"), ("S3",), "S4")
        assert split.all_subjects == ("S1", "S2", "S3", "S4")
