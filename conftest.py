"""Pytest bootstrap.

Makes the test and benchmark suites runnable straight from a source
checkout (``pytest tests/``) even when the package has not been installed,
which matters on offline machines where ``pip install -e .`` cannot fetch
the ``wheel`` build dependency.  When the package *is* installed the
inserted path is harmless (same code).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
